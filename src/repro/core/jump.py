"""Exact jump-chain simulation of the random pairwise scheduler.

The naive scheduler draws ``T = n(n−1)`` equally likely ordered agent
pairs per step and most draws are null.  Conditioned on the current
configuration, the number of steps until the next *productive*
interaction is geometric with success probability ``p = W/T`` (``W`` =
current number of productive ordered pairs), and the productive pair
itself is uniform over the ``W`` possibilities.  The jump engine samples
exactly that: a geometric skip via inverse-CDF from a uniform, then a
weighted pair draw.  The resulting joint distribution of (trajectory,
interaction counts) is identical to the naive process — there is no
approximation.

Hot-path layout
---------------

The engine compiles the protocol's weight families into one
:class:`~repro.core.fused.FusedIndex` — a single flat integer weight
index over all productive pair slots — so the general loop samples a
productive ordered pair with one Fenwick ``find`` (the residual target
decodes within-slot draws; no per-family dispatch) and updates weights
through precompiled per-state plans with O(1)-amortised slot deltas.
The index is *hybrid*: same-state slots whose counts sit in the
classifier's window pool their mass into a proposal pseudo-slot served
by O(1) agent-proposal rejection (and O(1) member moves on update),
while the rest keep the Fenwick walk.  When the pool holds every
remaining unit of weight — the steady state of same-state-heavy drains
like the §4 line — the loop *sprints*: the routed target draw is
skipped, transitions execute their compiled same-state variant
(guarded so gated product slots collapse to a stale-mark), and the
dominant −1/+1 transfer becomes a single flat re-label.
The protocol's transition function is precompiled into lookup tables
(per-state for same-state-only protocols, a lazily filled per-pair dict
of straight-line update programs otherwise) so the inner loop never
re-sums family weights or re-enters ``delta()``.  Protocols whose
``delta`` is not a pure function opt out via
:attr:`~repro.core.protocol.PopulationProtocol.compile_transitions`.

For protocols whose productive pairs are all same-state (every
state-optimal protocol in the paper), the recorder-free ``run()``
additionally dispatches between two exact samplers:

* a *proposal* sampler — draw a uniform agent (state ``s`` w.p.
  ``c_s/n``), accept with probability ``(c_s − 1)/M̂`` where ``M̂`` is an
  upper bound on the maximum count, yielding state ``s`` with
  probability exactly ``c_s(c_s − 1)/W``.  O(1) per proposal, efficient
  while the configuration is far from silent;
* a *Fenwick* sampler — the classic ``O(log N)`` weighted draw, which
  stays cheap as ``W`` drains toward silence.

Both are exact, so the engine switches between them adaptively (with
hysteresis) based on the acceptance rate ``W/(n·M̂)``.

All pair draws use exact integer rejection sampling from batched 64-bit
draws, so selection is unbiased for any ``W < 2^62``.  Cost is
``O(log N)`` (or amortised O(1)) per *productive* event, independent of
how many null interactions are skipped, which is what makes the paper's
``Θ(n²)``-interaction protocols simulatable.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro._deps import np

from ..exceptions import SimulationError
from .configuration import Configuration
from .engine import Event, Recorder
from .families import SameStatePairs
from .fenwick import FenwickTree
from .fused import PRODUCT, PROPOSAL, SAME, TRIANGULAR, FusedIndex
from .protocol import PopulationProtocol
from .snapshot import (
    EngineSnapshot,
    capture_rng,
    check_snapshot,
    restore_rng,
)

__all__ = ["JumpEngine"]

# Above this bound rejection sampling from 64-bit draws gets inefficient
# (and the float64 geometric-skip probability loses resolution).
_MAX_EXACT = 1 << 62

# Exclusive upper bound of one raw 64-bit draw.
_RAW_SPAN = 1 << 64
# Proposal draws fit comfortably in 32 bits (bound = N·m̂), where the
# modulo arithmetic stays single-digit; a separate uint32 batch serves
# them.
_RAW_SPAN32 = 1 << 32

_UNIFORM_BATCH = 8192
_RAW_BATCH = 8192
_AGENT_BATCH = 8192

# How often (in productive events) the fast loop recomputes the exact
# maximum count and re-evaluates its sampler choice.
_REFRESH_EVENTS = 8192

# How often (in productive events) the fused general loop re-partitions
# same-state slots between the proposal pool and the Fenwick block.
# Any partition is exact, so this is purely a constant-factor tracker:
# eager migration/expulsion keeps membership tight in between, and the
# acceptance trigger below forces an early pass when the bound m̂
# degrades, so the periodic pass can be long.
_RECLASSIFY_EVENTS = 8192

# A pool draw burning more proposals than this signals a degraded
# acceptance bound (a member count drifted far from m̂ since the last
# partition) and forces an immediate reclassification — rate-limited by
# a cooldown so a structurally poor regime cannot thrash the O(n) pass.
_RECLASSIFY_PROPOSALS = 32
_RECLASSIFY_COOLDOWN = 64

# A same-state transition's net effect: ((state, count_delta, weight
# coefficient), ...) — the coefficient is count_delta for states whose
# (s, s) pair is a rule and 0 otherwise, so the productive-weight change
# of moving a count c0 → c1 is coefficient · (c0 + c1 − 1).
_Ops = Tuple[Tuple[int, int, int], ...]


def _transition_ops(si: int, sj: int, ti: int, tj: int):
    """Net per-state count changes of one transition, deduplicated."""
    if si == sj:
        # Same-state rules dominate compilation; resolve their few
        # overlap shapes branch-wise instead of through a dict.
        if ti == tj:
            return () if ti == si else ((si, -2), (ti, 2))
        if ti == si:
            return ((si, -1), (tj, 1))
        if tj == si:
            return ((si, -1), (ti, 1))
        return ((si, -2), (ti, 1), (tj, 1))
    delta: Dict[int, int] = {}
    delta[si] = delta.get(si, 0) - 1
    delta[sj] = delta.get(sj, 0) - 1
    delta[ti] = delta.get(ti, 0) + 1
    delta[tj] = delta.get(tj, 0) + 1
    return tuple((s, d) for s, d in delta.items() if d != 0)


class JumpEngine:
    """Drives one protocol run; create a new engine per run.

    ``debug=True`` re-verifies after every productive event that the
    cached total weight matches the weights re-summed from the families
    (and routes ``run()`` through the instrumented general loop).
    """

    def __init__(
        self,
        protocol: PopulationProtocol,
        configuration: Configuration,
        rng: np.random.Generator,
        debug: bool = False,
        instrumentation=None,
    ) -> None:
        protocol.validate_configuration(configuration)
        # Opt-in telemetry (repro.obs.Instrumentation).  The fast loops
        # account for it per chunk via batch-consumption arithmetic and
        # locals flushed at loop exit; counters never consume
        # randomness, so instrumented runs stay bit-identical.
        self._instr = instrumentation
        n = protocol.num_agents
        if n * (n - 1) >= _MAX_EXACT:
            raise SimulationError(
                f"population {n} too large for exact pair sampling"
            )
        self._protocol = protocol
        self._rng = rng
        self._debug = bool(debug)
        self.counts: List[int] = configuration.counts_list()
        self._num_states = protocol.num_states
        self._total_pairs = n * (n - 1)
        self.interactions = 0
        self.events = 0
        # The families are compiled into the fused index and then only
        # serve as the structural description; all mutable sampling
        # state lives in the index.
        families = protocol.build_families(self.counts)
        self._fused = FusedIndex(families, self._num_states, self.counts)
        self._weight = self._fused.total
        self._uniforms = rng.random(_UNIFORM_BATCH)
        self._uniform_pos = 0
        self._raws: List[int] = []
        self._raw_pos = 0
        self._pair_table: Optional[Dict[int, tuple]] = (
            {} if protocol.compile_transitions else None
        )
        # Dense same-state program cache: same-state draws dominate the
        # hybrid loop, and a list index beats hashing the pair key.
        self._ss_progs: Optional[List[Optional[tuple]]] = (
            [None] * self._num_states
            if protocol.compile_transitions else None
        )
        self._ss_table = self._compile_same_state_table(families)

    def _compile_same_state_table(self, families):
        """Per-state transition table for same-state-only protocols.

        Returns ``None`` when the protocol opts out of compilation, has
        cross-state families, or (defensively) claims a same-state pair
        its ``delta`` reports as null — the dynamic path then raises the
        coverage error lazily, exactly like the general sampler.
        """
        if not self._protocol.compile_transitions:
            return None
        if len(families) != 1:
            return None
        family = families[0]
        if type(family) is not SameStatePairs:
            return None
        rule_states = {s for s, _ in family.pairs()}
        table: List[Optional[tuple]] = [None] * self._num_states
        for s in rule_states:
            out = self._protocol.delta(s, s)
            if out is None:
                return None
            ti, tj = out
            # Third field: weight coefficient — Δ(c(c−1)) for a count
            # move c0 → c1 = c0+d is d·(c0+c1−1), and 0 for states
            # without a same-state rule (they never contribute to W).
            ops: _Ops = tuple(
                (st, d, d if st in rule_states else 0)
                for st, d in _transition_ops(s, s, ti, tj)
            )
            table[s] = (ti, tj, ops)
        return table

    # ------------------------------------------------------------------
    # Randomness helpers
    # ------------------------------------------------------------------
    def _next_uniform(self) -> float:
        pos = self._uniform_pos
        if pos == _UNIFORM_BATCH:
            self._uniforms = self._rng.random(_UNIFORM_BATCH)
            pos = 0
        self._uniform_pos = pos + 1
        return self._uniforms[pos]

    def _next_raw(self) -> int:
        """One uniform integer in ``[0, 2^64)`` from a batched draw."""
        pos = self._raw_pos
        if pos >= len(self._raws):
            self._raws = self._rng.integers(
                0, _RAW_SPAN, size=_RAW_BATCH, dtype=np.uint64
            ).tolist()
            pos = 0
        self._raw_pos = pos + 1
        return self._raws[pos]

    def rand_below(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)``, exact for any ``bound < 2^62``.

        Rejection sampling from 64-bit draws: a draw is accepted iff it
        falls in a complete bucket of ``bound`` values, so the result is
        unbiased — unlike float multiplication, which misweights values
        once ``bound`` approaches 2⁵³.
        """
        limit = _RAW_SPAN - bound
        while True:
            raw = self._next_raw()
            value = raw % bound
            if raw - value <= limit:
                return value

    # ------------------------------------------------------------------
    # Weight bookkeeping
    # ------------------------------------------------------------------
    @property
    def productive_weight(self) -> int:
        """Current number of productive ordered pairs ``W`` (cached)."""
        return self._weight

    def recomputed_weight(self) -> int:
        """``W`` re-summed from fresh families (debug / test cross-check).

        Rebuilds the families from the live counts, so it checks the
        fused index against an independent from-scratch computation.
        """
        return sum(
            family.weight
            for family in self._protocol.build_families(self.counts)
        )

    def _assert_weight_sync(self) -> None:
        recomputed = self.recomputed_weight()
        if not (self._weight == self._fused.total == recomputed):
            raise AssertionError(
                f"cached weight {self._weight} (fused {self._fused.total}) "
                f"!= recomputed {recomputed} after {self.events} events"
            )

    def is_silent(self) -> bool:
        """True iff no productive interaction exists."""
        return self._weight == 0

    def reset_configuration(self, configuration) -> None:
        """Adopt an externally mutated configuration mid-run.

        This is the fault-injection seam used by the scenario engine:
        the population is corrupted *outside* the protocol's own
        dynamics, so the fused index and the cached weight ``W`` are
        rebuilt from the new counts.  The compiled transition tables are
        count-independent and stay valid; the interaction/event counters
        and the generator stream are deliberately preserved, so a run
        continues exactly where it left off.  The population size and
        state space must not change — churn rebuilds the engine instead.
        """
        counts = (
            configuration.counts_list()
            if isinstance(configuration, Configuration)
            else [int(c) for c in configuration]
        )
        if len(counts) != self._num_states:
            raise SimulationError(
                f"reset configuration has {len(counts)} states, "
                f"engine has {self._num_states}"
            )
        if any(c < 0 for c in counts):
            raise SimulationError("reset configuration has negative counts")
        if sum(counts) != self._protocol.num_agents:
            raise SimulationError(
                f"reset configuration has {sum(counts)} agents, "
                f"engine has {self._protocol.num_agents}"
            )
        self.counts = counts
        # In-place index resync keeps the compiled transition programs
        # valid; only indexes with opaque family slots need a rebuild.
        if self._fused.resync(counts):
            self._weight = self._fused.total
        else:
            self._rebuild_fused(counts)
        if self._instr is not None:
            self._instr.add("resyncs")
            self._instr.mark(
                "resync", events=self.events, interactions=self.interactions
            )

    def _rebuild_fused(self, counts: List[int]) -> None:
        """Recompile the fused index (and weight) from a counts list.

        The compiled pair table holds straight-line programs bound to
        the *old* index's payload objects, so it must be invalidated
        whenever the index is rebuilt — entries recompile lazily.
        """
        self._fused = FusedIndex(
            self._protocol.build_families(counts), self._num_states, counts
        )
        self._weight = self._fused.total
        if self._pair_table is not None:
            self._pair_table = {}
            self._ss_progs = [None] * self._num_states

    def _canonicalise_index(self) -> None:
        """Make the fused index a pure function of the live counts.

        One in-place resync (index rebuild for opaque slots) — exactly
        the re-partition the fast loops run periodically, so the step
        distribution is unchanged.  At recorder-free ``run()``
        boundaries the index is already canonical and this is a no-op
        state-wise.
        """
        if self._fused.resync(self.counts):
            self._weight = self._fused.total
        else:
            self._rebuild_fused(self.counts)

    def snapshot(self) -> EngineSnapshot:
        """Plain-data checkpoint for bit-exact resumption.

        Canonicalises the hybrid sampler first (see
        :mod:`repro.core.snapshot` for the exactness contract), then
        captures counts, counters, the exact bit-generator state, and
        the unconsumed buffered draws.
        """
        self._canonicalise_index()
        if self._instr is not None:
            self._instr.add("snapshots")
            self._instr.mark(
                "snapshot", events=self.events,
                interactions=self.interactions,
            )
        exhausted = self._uniform_pos >= _UNIFORM_BATCH
        return EngineSnapshot(
            kind="jump",
            num_states=self._num_states,
            num_agents=self._protocol.num_agents,
            counts=tuple(self.counts),
            interactions=self.interactions,
            events=self.events,
            rng_state=capture_rng(self._rng),
            uniforms=(
                () if exhausted
                else tuple(float(u) for u in self._uniforms)
            ),
            uniform_pos=_UNIFORM_BATCH if exhausted else self._uniform_pos,
            raws=tuple(int(r) for r in self._raws[self._raw_pos:]),
        )

    def restore(self, snapshot: EngineSnapshot) -> None:
        """Adopt a snapshot in place; continues bit-for-bit.

        Reuses the ``resync`` fault seam, so nothing recompiles — the
        transition tables are count-independent and stay valid.
        """
        check_snapshot(
            snapshot, "jump", self._num_states, self._protocol.num_agents
        )
        self.counts = [int(c) for c in snapshot.counts]
        self._canonicalise_index()
        self.interactions = snapshot.interactions
        self.events = snapshot.events
        restore_rng(self._rng, snapshot.rng_state)
        if snapshot.uniforms:
            self._uniforms = np.asarray(snapshot.uniforms, dtype=np.float64)
            self._uniform_pos = snapshot.uniform_pos
        else:
            self._uniform_pos = _UNIFORM_BATCH
        self._raws = [int(r) for r in snapshot.raws]
        self._raw_pos = 0
        if self._instr is not None:
            self._instr.add("restores")
            self._instr.mark(
                "restore", events=self.events,
                interactions=self.interactions,
            )

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def _geometric_skip(self, weight: int) -> int:
        """Steps until the next productive interaction (>= 1), exact."""
        p = weight / self._total_pairs
        if p >= 1.0:
            return 1
        u = self._next_uniform()
        if u <= p:
            return 1  # ceil(log(1-u)/log(1-p)) == 1 iff u <= p
        skip = math.ceil(math.log(1.0 - u) / math.log1p(-p))
        return skip if skip >= 1 else 1

    def _sample_pair(self, weight: int) -> tuple:
        return self._fused.sample(self.rand_below)

    def _compile_pair(self, si: int, sj: int, full: bool = True) -> list:
        """``[ti, tj, ops, prog, refresh, fast]`` — one transition, compiled.

        ``prog``/``refresh``/``fast`` are the fused index's straight-line
        update programs for the transition (executed inline by the fast
        loop; ``fast`` is the guarded same-state sprint variant).  With
        ``full=False`` only ``fast`` is compiled; the entry is a list
        so the general path can fill ``prog``/``refresh`` in lazily on
        the first draw whose sprint guard fails.
        """
        out = self._protocol.delta(si, sj)
        if out is None:
            raise SimulationError(
                f"families sampled null pair ({si}, {sj}) — "
                "family coverage does not match delta"
            )
        ti, tj = out
        ops = _transition_ops(si, sj, ti, tj)
        prog, refresh, fast = self._fused.compile_transition(ops, full=full)
        return [ti, tj, ops, prog, refresh, fast]

    def _transition(self, si: int, sj: int) -> tuple:
        """``(ti, tj, ops, ...)`` for a productive pair, via the table."""
        table = self._pair_table
        if table is None:
            # Dynamic delta (compilation opted out): no point building
            # the fused straight-line program only to discard it.
            out = self._protocol.delta(si, sj)
            if out is None:
                raise SimulationError(
                    f"families sampled null pair ({si}, {sj}) — "
                    "family coverage does not match delta"
                )
            ti, tj = out
            return (ti, tj, _transition_ops(si, sj, ti, tj))
        entry = table.get(si * self._num_states + sj)
        if entry is None:
            entry = self._compile_pair(si, sj)
            table[si * self._num_states + sj] = entry
        return entry

    def _apply_ops(self, ops) -> None:
        """Apply precomputed count deltas, keeping the index and ``W`` synced."""
        counts = self.counts
        fused = self._fused
        delta_w = 0
        for state, delta in ops:
            old = counts[state]
            new = old + delta
            if new < 0:
                raise SimulationError(
                    f"state {state} count went negative applying transition"
                )
            counts[state] = new
            delta_w += fused.apply_count_change(state, old, new)
        self._weight += delta_w

    def step(self) -> Optional[Event]:
        """Advance to (and apply) the next productive interaction.

        Returns ``None`` when the configuration is silent.
        """
        weight = self._weight
        if weight == 0:
            return None
        self.interactions += self._geometric_skip(weight)
        si, sj = self._sample_pair(weight)
        ti, tj, ops = self._transition(si, sj)[:3]
        self._apply_ops(ops)
        self.events += 1
        if self._debug:
            self._assert_weight_sync()
        return Event(self.interactions, si, sj, ti, tj)

    def run(
        self,
        max_interactions: Optional[int] = None,
        recorder: Optional[Recorder] = None,
        max_events: Optional[int] = None,
    ) -> bool:
        """Run until silence or budget exhaustion; True iff silent.

        When the geometric skip would overshoot ``max_interactions`` the
        clock is clamped to the budget and the pending productive event
        is *not* applied (no interaction beyond the budget happened).
        ``max_events`` additionally bounds the number of *productive*
        events — the engine's actual work — which is the effective guard
        for runs that churn without converging.

        The common recorder-free, unbounded-interaction case dispatches
        to allocation-free specialised loops; a recorder, an interaction
        budget, or ``debug`` mode selects the instrumented general loop.
        """
        if recorder is None and max_interactions is None and not self._debug:
            if self._ss_table is not None:
                return self._run_fast_same_state(max_events)
            return self._run_fast_general(max_events)
        return self._run_general(max_interactions, recorder, max_events)

    # ------------------------------------------------------------------
    # General (instrumented) loop — recorders, budgets, debug
    # ------------------------------------------------------------------
    def _run_general(
        self,
        max_interactions: Optional[int],
        recorder: Optional[Recorder],
        max_events: Optional[int],
    ) -> bool:
        if recorder is not None:
            recorder.on_start(self.counts)
        events0 = self.events
        interactions0 = self.interactions
        silent = False
        while True:
            weight = self._weight
            if weight == 0:
                silent = True
                break
            if max_events is not None and self.events >= max_events:
                break
            skip = self._geometric_skip(weight)
            if (
                max_interactions is not None
                and self.interactions + skip > max_interactions
            ):
                self.interactions = max_interactions
                break
            self.interactions += skip
            si, sj = self._sample_pair(weight)
            ti, tj, ops = self._transition(si, sj)[:3]
            self._apply_ops(ops)
            self.events += 1
            if self._debug:
                self._assert_weight_sync()
            if recorder is not None:
                recorder.on_event(
                    Event(self.interactions, si, sj, ti, tj), self.counts
                )
        if recorder is not None:
            recorder.on_finish(silent, self.interactions, self.counts)
        if self._instr is not None:
            self._instr.add_counters(
                events=self.events - events0,
                interactions=self.interactions - interactions0,
            )
        return silent

    # ------------------------------------------------------------------
    # Fast loops — no recorder, no interaction budget, no Event objects
    # ------------------------------------------------------------------
    def _run_fast_general(self, max_events: Optional[int]) -> bool:
        """Hybrid fused-index loop for protocols with cross-state families.

        One exact weighted draw per event resolves to a slot of the
        fused index (inlined Fenwick ``find``); the residual target
        decodes the within-slot pair, so same-state and product slots
        need no further randomness.  Draws landing in the proposal-pool
        pseudo-slot switch to O(1) agent-proposal rejection — the fast
        regime for same-state-heavy protocols like the §4 line, whose
        mass the Fenwick walk used to re-search on every event.
        Transitions execute as precompiled straight-line programs:
        per-state payload updates (O(1) count moments for the reset
        line, one-sided Fenwick writes for products, O(1) member moves
        for pooled slots) followed by one deduplicated weight refresh
        per composite slot — no per-event family dispatch anywhere.
        The pool partition is re-evaluated every ``_RECLASSIFY_EVENTS``
        so it tracks the drifting count profile.
        """
        protocol = self._protocol
        rng = self._rng
        counts = self.counts
        fused = self._fused
        tree = fused.tree
        values = fused.values
        num_composite = fused.num_composite
        fensize = fused.fenwick_size
        highbit = 1 << (fensize.bit_length() - 1) if fensize else 0
        slot_kind = fused.slot_kind
        slot_payload = fused.slot_payload
        num_states = self._num_states
        total_pairs = self._total_pairs
        pair_table = self._pair_table
        ss_progs = self._ss_progs
        log1p, ceil = math.log1p, math.ceil

        pool = fused.pool
        if pool is not None:
            pagents = pool.agents
            pwhere = pool.where
            ppositions = pool.positions
            pslot = pool.slot
        else:
            pagents = pwhere = ppositions = None
            pslot = -1

        weight = self._weight
        interactions = self.interactions
        events = self.events
        # max(0, ...): an already-exhausted budget must stop immediately,
        # not underflow past the -1 "unlimited" sentinel.
        remaining = -1 if max_events is None else max(0, max_events - events)
        reclassify_left = _RECLASSIFY_EVENTS
        reclassify_cooldown = 0
        # Telemetry: draw totals derive from batch-refill tallies at
        # loop exit (the `nub`/`nrb`/`nsb` increments below run once per
        # 8192 draws); the per-branch counters only tick when
        # instrumentation is attached (`instr_on`), so the off path pays
        # one local bool test per event at most.
        ins = self._instr
        instr_on = ins is not None
        events0 = events
        interactions0 = interactions
        nub = nrb = nsb = 0
        c_sprint = c_pool = c_prop = 0
        c_fen = c_comp = c_reclass = 0
        # Monotone upper bound on every state count (reset at each
        # reclassification) — the acceptance bound for decoding stale
        # product sides by rejection instead of rebuilding their trees.
        gmax = max(counts)
        pmhat = pool.mhat if pool is not None else 1
        # The pool pseudo-slot value is mirrored in a local and written
        # back only at sync points (routing through the general find,
        # reclassification, loop exit) — pooled same-state updates then
        # touch a single local instead of three shared structures.
        pool_w = values[pslot] if pool is not None else -1

        # Batched draws, as in the same-state loop: log(1-u) skip
        # numerators through numpy, raw 64-bit integers for exact
        # weighted targets.
        lus: List[float] = []
        upos = _UNIFORM_BATCH
        raws: List[int] = []
        raw_len = 0
        rpos = 0
        sraws: List[int] = []
        sraw_len = 0
        spos = 0
        # log1p(-W/T) cached on W: the drain's dominant transfer events
        # leave the total weight unchanged, so the skip denominator is
        # usually reusable.
        lp = 0.0
        lp_weight = -1

        while remaining != 0 and weight:
            # Geometric skip.
            if weight >= total_pairs:
                interactions += 1
            else:
                if upos == _UNIFORM_BATCH:
                    lus = np.log1p(-rng.random(_UNIFORM_BATCH)).tolist()
                    upos = 0
                    nub += 1
                lu = lus[upos]
                upos += 1
                if weight != lp_weight:
                    lp = log1p(-weight / total_pairs)
                    lp_weight = weight
                if lu >= lp:
                    interactions += 1
                else:
                    interactions += ceil(lu / lp)
            if weight == pool_w:
                # Sprint: every remaining unit of weight is pooled (the
                # steady state of a same-state-heavy drain), so the
                # routed target draw is a foregone conclusion — propose
                # directly, exactly as the same-state fast loop does.
                mh = pmhat
                pbound = len(pagents) * mh
                proposals = 0
                if pbound <= 0x80000000:
                    # Single-digit arithmetic: proposals draw from a
                    # uint32 batch (bound = N·m̂ fits easily).
                    plimit = _RAW_SPAN32 - pbound
                    while True:
                        if spos == sraw_len:
                            sraws = rng.integers(
                                0, _RAW_SPAN32, size=_RAW_BATCH,
                                dtype=np.uint32,
                            ).tolist()
                            sraw_len = _RAW_BATCH
                            spos = 0
                            nsb += 1
                        raw = sraws[spos]
                        spos += 1
                        v = raw % pbound
                        if raw - v > plimit:
                            continue
                        proposals += 1
                        s = pagents[v // mh]
                        # Member invariant: len(positions[s]) ==
                        # counts[s], so the threshold test reads the
                        # counts directly.
                        if v % mh < counts[s] - 1:
                            si = sj = s
                            break
                else:
                    plimit = _RAW_SPAN - pbound
                    while True:
                        if rpos == raw_len:
                            raws = rng.integers(
                                0, _RAW_SPAN, size=_RAW_BATCH,
                                dtype=np.uint64,
                            ).tolist()
                            raw_len = _RAW_BATCH
                            rpos = 0
                            nrb += 1
                        raw = raws[rpos]
                        rpos += 1
                        v = raw % pbound
                        if raw - v > plimit:
                            continue
                        proposals += 1
                        s = pagents[v // mh]
                        if v % mh < counts[s] - 1:
                            si = sj = s
                            break
                if (
                    proposals > _RECLASSIFY_PROPOSALS
                    and reclassify_cooldown <= 0
                ):
                    reclassify_left = 0
                if instr_on:
                    c_sprint += 1
                    c_prop += proposals
                kind = SAME
            else:
                if pslot >= 0:
                    values[pslot] = pool_w
                # Exact uniform target in [0, weight).
                while True:
                    if rpos == raw_len:
                        raws = rng.integers(
                            0, _RAW_SPAN, size=_RAW_BATCH, dtype=np.uint64
                        ).tolist()
                        raw_len = _RAW_BATCH
                        rpos = 0
                        nrb += 1
                    raw = raws[rpos]
                    rpos += 1
                    target = raw % weight
                    if raw - target <= _RAW_SPAN - weight:
                        break
                # Fused-index find: the few composite slots (the pool
                # pseudo-slot included) short-circuit with a linear
                # scan; only draws landing in the tree-mode same-state
                # block walk the Fenwick tree.
                pos = -1
                for ci in range(num_composite):
                    v = values[ci]
                    if target < v:
                        pos = ci
                        break
                    target -= v
                if pos < 0:
                    pos = 0
                    bit = highbit
                    while bit:
                        nxt = pos + bit
                        if nxt <= fensize:
                            below = tree[nxt]
                            if below <= target:
                                target -= below
                                pos = nxt
                        bit >>= 1
                    pos += num_composite
                    if instr_on:
                        c_fen += 1
                elif instr_on:
                    c_comp += 1
                kind = slot_kind[pos]
                if kind == PROPOSAL:
                    # Inlined _ProposalPool.sample_state: one raw draw
                    # fuses the uniform pool-agent proposal with its
                    # acceptance threshold; the routed residual target
                    # is discarded (it is independent of the fresh
                    # proposal draws).
                    mh = pmhat
                    pbound = len(pagents) * mh
                    plimit = _RAW_SPAN - pbound
                    proposals = 0
                    while True:
                        if rpos == raw_len:
                            raws = rng.integers(
                                0, _RAW_SPAN, size=_RAW_BATCH,
                                dtype=np.uint64,
                            ).tolist()
                            raw_len = _RAW_BATCH
                            rpos = 0
                            nrb += 1
                        raw = raws[rpos]
                        rpos += 1
                        v = raw % pbound
                        if raw - v > plimit:
                            continue
                        proposals += 1
                        s = pagents[v // mh]
                        if v % mh < counts[s] - 1:
                            si = sj = s
                            break
                    if (
                        proposals > _RECLASSIFY_PROPOSALS
                        and reclassify_cooldown <= 0
                    ):
                        # Acceptance degraded since the last partition
                        # (a member count drifted far from m̂) —
                        # re-partition now instead of waiting out the
                        # periodic counter.
                        reclassify_left = 0
                    if instr_on:
                        c_pool += 1
                        c_prop += proposals
                elif kind == TRIANGULAR:
                    # Inlined _TriangularSlot.pair_from_target (factor 1).
                    tri = slot_payload[pos]
                    tcounts = tri.counts
                    line = tri.line
                    suffix = tri.s
                    tlen = len(tcounts)
                    si = -1
                    for i in range(tlen):
                        c = tcounts[i]
                        if c == 0:
                            continue
                        suffix -= c
                        block = c * (c - 1 + suffix)
                        if target < block:
                            same = c * (c - 1)
                            if target < same:
                                si = sj = line[i]
                                break
                            si = line[i]
                            sj = -1
                            j_target = (target - same) // c
                            for j in range(i + 1, tlen):
                                cj = tcounts[j]
                                if j_target < cj:
                                    sj = line[j]
                                    break
                                j_target -= cj
                            break
                        target -= block
                    if si < 0 or sj < 0:
                        raise SimulationError(
                            "fused triangular sample out of range"
                        )
                elif kind == SAME:
                    si = sj = slot_payload[pos]
                elif kind == PRODUCT:
                    prod = slot_payload[pos]
                    if prod.stale:
                        # Decode around the stale side trees: rejection
                        # against the global count bound, rebuilding
                        # only if the profile is too skewed for it.
                        si, sj = prod.sample_stale(gmax, self.rand_below)
                    else:
                        rtree = prod.resp_tree
                        rsize = prod.resp_size
                        # Both side draws decode from the one residual target.
                        t1 = target // rtree[rsize]
                        t2 = target - t1 * rtree[rsize]
                        p1 = 0
                        bit = prod.init_size
                        itree = prod.init_tree
                        while bit:
                            nxt = p1 + bit
                            if nxt <= prod.init_size:
                                below = itree[nxt]
                                if below <= t1:
                                    t1 -= below
                                    p1 = nxt
                            bit >>= 1
                        si = prod.initiators[p1]
                        p2 = 0
                        bit = rsize
                        while bit:
                            nxt = p2 + bit
                            if nxt <= rsize:
                                below = rtree[nxt]
                                if below <= t2:
                                    t2 -= below
                                    p2 = nxt
                            bit >>= 1
                        sj = prod.responders[p2]
                else:
                    si, sj = slot_payload[pos].sample(self.rand_below)
            # Transition: precompiled program when the table is on.
            if pair_table is not None:
                if si == sj:
                    # Same-state draws dominate the hybrid loop: a
                    # dense per-state list beats hashing the pair key,
                    # and only the sprint variant is compiled up front
                    # (the general program fills in lazily on demand).
                    entry = ss_progs[si]
                    if entry is None:
                        entry = self._compile_pair(si, si, full=False)
                        ss_progs[si] = entry
                else:
                    key = si * num_states + sj
                    entry = pair_table.get(key)
                    if entry is None:
                        entry = self._compile_pair(si, sj)
                        pair_table[key] = entry
                fast = entry[5]
                if fast is not None:
                    # Same-state sprint variant: legal while every
                    # product slot it touches weighs zero (empty
                    # responder side, no responder-side ops) — then the
                    # product work collapses to a stale-mark plus a net
                    # scalar add, and no refresh pass is needed.
                    fprods = fast[1]
                    if len(fprods) == 1:
                        # Dominant shape: guard and act in one step.
                        prod, dinit, dresp = fprods[0]
                        if dresp == 0 and prod.resp_total == 0:
                            prod.stale |= 1
                            if dinit:
                                prod.init_total += dinit
                        else:
                            fast = None
                    elif fprods:
                        for prod, dinit, dresp in fprods:
                            if dresp != 0 or prod.resp_total != 0:
                                fast = None
                                break
                        if fast is not None:
                            for prod, dinit, dresp in fprods:
                                prod.stale |= 1
                                if dinit:
                                    prod.init_total += dinit
                if fast is not None:
                    transfer = fast[2]
                    applied = False
                    if transfer is not None:
                        # One agent moves src → dst; when both states
                        # are pool members this is a single flat
                        # re-label (no swap-removal, no insertion).
                        # Every applied variant funnels into the one
                        # shared epilogue below — the branches must
                        # never fall through into the generic loop.
                        src = transfer[0]
                        dst = transfer[1]
                        pls = ppositions[src]
                        pld = ppositions[dst]
                        if pls is not None and pld is not None:
                            old_s = counts[src]
                            old_d = counts[dst]
                            counts[src] = old_s - 1
                            counts[dst] = old_d + 1
                            if old_d + 1 > gmax:
                                gmax = old_d + 1
                            p = pls.pop()
                            pagents[p] = dst
                            pwhere[p] = len(pld)
                            pld.append(p)
                            if old_s == 2:
                                # src drained below a pair: expel its
                                # last agent.
                                p = pls.pop()
                                last = len(pagents) - 1
                                if p != last:
                                    moved = pagents[last]
                                    mw = pwhere[last]
                                    pagents[p] = moved
                                    pwhere[p] = mw
                                    ppositions[moved][mw] = p
                                pagents.pop()
                                pwhere.pop()
                                ppositions[src] = None
                            if old_d + 1 > pool.hi:
                                # Expel dst above the window.
                                pld = ppositions[dst]
                                w = (old_d + 1) * old_d
                                for _ in range(old_d + 1):
                                    p = pld.pop()
                                    last = len(pagents) - 1
                                    if p != last:
                                        moved = pagents[last]
                                        mw = pwhere[last]
                                        pagents[p] = moved
                                        pwhere[p] = mw
                                        ppositions[moved][mw] = p
                                    pagents.pop()
                                    pwhere.pop()
                                ppositions[dst] = None
                                # src keeps its pool delta; dst mass
                                # moves from the pool to the tree.
                                pool_w -= old_d * (old_d - 1)
                                values[transfer[4]] = w
                                node = transfer[5]
                                while node <= fensize:
                                    tree[node] += w
                                    node += node & -node
                                weight += w - old_d * (old_d - 1)
                                dw = -(old_s + old_s - 2)
                                pool_w += dw
                                weight += dw
                            else:
                                dw = (old_d - old_s + 1) * 2
                                if dw:
                                    pool_w += dw
                                    weight += dw
                            applied = True
                        elif (
                            pls is not None
                            and counts[dst] == 1
                            and pool.lo <= 2 <= pool.hi
                        ):
                            # dst migrates in: its lone agent plus the
                            # moved one form a fresh two-member list.
                            old_s = counts[src]
                            counts[src] = old_s - 1
                            counts[dst] = 2
                            if 2 > gmax:
                                gmax = 2
                            p = pls.pop()
                            pagents[p] = dst
                            pwhere[p] = 0
                            ppositions[dst] = [p, len(pagents)]
                            pwhere.append(1)
                            pagents.append(dst)
                            if old_s == 2:
                                p = pls.pop()
                                last = len(pagents) - 1
                                if p != last:
                                    moved = pagents[last]
                                    mw = pwhere[last]
                                    pagents[p] = moved
                                    pwhere[p] = mw
                                    ppositions[moved][mw] = p
                                pagents.pop()
                                pwhere.pop()
                                ppositions[src] = None
                            dw = (2 - old_s) * 2
                            if dw:
                                pool_w += dw
                                weight += dw
                            applied = True
                    if applied:
                        events += 1
                        remaining -= 1
                        reclassify_left -= 1
                        reclassify_cooldown -= 1
                        if reclassify_left <= 0:
                            reclassify_left = _RECLASSIFY_EVENTS
                            reclassify_cooldown = _RECLASSIFY_COOLDOWN
                            gmax = max(counts)
                            fused.reclassify(counts)
                            pool_w = pool.weight
                            pmhat = pool.mhat
                            if instr_on:
                                c_reclass += 1
                        continue
                    for state, delta, slot, node0 in fast[0]:
                        old = counts[state]
                        new = old + delta
                        if new < 0:
                            raise SimulationError(
                                f"state {state} count went negative "
                                "applying transition"
                            )
                        counts[state] = new
                        if new > gmax:
                            gmax = new
                        plist = ppositions[state]
                        if plist is None:
                            if pool.lo <= new <= pool.hi:
                                # Migrate into the pool window.
                                w = new * (new - 1)
                                old_w = values[slot]
                                if old_w:
                                    values[slot] = 0
                                    node = node0
                                    while node <= fensize:
                                        tree[node] -= old_w
                                        node += node & -node
                                base = len(pagents)
                                ppositions[state] = list(
                                    range(base, base + new)
                                )
                                pagents.extend([state] * new)
                                pwhere.extend(range(new))
                                if new > pmhat:
                                    pmhat = new
                                pool_w += w
                                weight += w - old_w
                            else:
                                w = new * (new - 1)
                                dw = w - values[slot]
                                if dw:
                                    values[slot] = w
                                    weight += dw
                                    node = node0
                                    while node <= fensize:
                                        tree[node] += dw
                                        node += node & -node
                        else:
                            if delta == 1:
                                pwhere.append(len(plist))
                                plist.append(len(pagents))
                                pagents.append(state)
                                if new > pool.hi:
                                    # Expel above the window: keeping
                                    # the member would stretch m̂ (and
                                    # the acceptance of every small
                                    # member) — the Fenwick serves
                                    # outgrown slots better.
                                    for _ in range(new):
                                        p = plist.pop()
                                        last = len(pagents) - 1
                                        if p != last:
                                            moved = pagents[last]
                                            mw = pwhere[last]
                                            pagents[p] = moved
                                            pwhere[p] = mw
                                            ppositions[moved][mw] = p
                                        pagents.pop()
                                        pwhere.pop()
                                    ppositions[state] = None
                                    w = new * (new - 1)
                                    pool_w -= old * (old - 1)
                                    weight -= old * (old - 1)
                                    values[slot] = w
                                    node = node0
                                    while node <= fensize:
                                        tree[node] += w
                                        node += node & -node
                                    weight += w
                                    continue
                            elif delta == -1 and new >= 2:
                                p = plist.pop()
                                last = len(pagents) - 1
                                if p != last:
                                    moved = pagents[last]
                                    mw = pwhere[last]
                                    pagents[p] = moved
                                    pwhere[p] = mw
                                    ppositions[moved][mw] = p
                                pagents.pop()
                                pwhere.pop()
                            elif delta > 0:
                                for _ in range(delta):
                                    pwhere.append(len(plist))
                                    plist.append(len(pagents))
                                    pagents.append(state)
                                if new > pmhat:
                                    pmhat = new
                            else:
                                removals = -delta if new >= 2 else old
                                for _ in range(removals):
                                    p = plist.pop()
                                    last = len(pagents) - 1
                                    if p != last:
                                        moved = pagents[last]
                                        mw = pwhere[last]
                                        pagents[p] = moved
                                        pwhere[p] = mw
                                        ppositions[moved][mw] = p
                                    pagents.pop()
                                    pwhere.pop()
                                if new < 2:
                                    # Expel: weightless members only
                                    # dilute proposal acceptance.
                                    ppositions[state] = None
                            dw = new * (new - 1) - old * (old - 1)
                            if dw:
                                pool_w += dw
                                weight += dw
                    events += 1
                    remaining -= 1
                    reclassify_left -= 1
                    reclassify_cooldown -= 1
                    if reclassify_left <= 0:
                        reclassify_left = _RECLASSIFY_EVENTS
                        reclassify_cooldown = _RECLASSIFY_COOLDOWN
                        gmax = max(counts)
                        if pool is not None:
                            fused.reclassify(counts)
                            pool_w = pool.weight
                            pmhat = pool.mhat
                            if instr_on:
                                c_reclass += 1
                    continue
                if entry[3] is None:
                    # First general-path use of a fast-only entry: fill
                    # the full program in now.
                    entry[3], entry[4], _ = fused.compile_transition(
                        entry[2]
                    )
                for state, delta, steps in entry[3]:
                    old = counts[state]
                    new = old + delta
                    if new < 0:
                        raise SimulationError(
                            f"state {state} count went negative applying "
                            "transition"
                        )
                    counts[state] = new
                    if new > gmax:
                        gmax = new
                    for step in steps:
                        code = step[0]
                        if code == TRIANGULAR:
                            tri = step[1]
                            tri.counts[step[2]] = new
                            tri.s += delta
                            tri.q += new * new - old * old
                        elif code == PRODUCT:
                            # Scalar side totals always; the padded-tree
                            # walk only while the slot can be sampled
                            # (the other side occupied) — a gated side
                            # goes stale and rebuilds on next decode.
                            prod = step[5]
                            if step[6]:
                                prod.init_total += delta
                                if prod.stale & 1 or prod.resp_total == 0:
                                    prod.stale |= 1
                                    continue
                            else:
                                prod.resp_total += delta
                                if prod.stale & 2 or prod.init_total == 0:
                                    prod.stale |= 2
                                    continue
                            ptree = step[1]
                            node = step[2]
                            psize = step[3]
                            while node <= psize:
                                ptree[node] += delta
                                node += node & -node
                        elif code == SAME:
                            # Hybrid dispatch: the state's current pool
                            # membership picks an O(1) member move or
                            # the Fenwick walk (SAME steps only exist
                            # when the pool does).
                            plist = ppositions[state]
                            if plist is None:
                                slot = step[1]
                                if pool.lo <= new <= pool.hi:
                                    # Migrate into the pool window: zero
                                    # the Fenwick slot once, O(1) moves
                                    # from here on.
                                    w = new * (new - 1)
                                    old_w = values[slot]
                                    if old_w:
                                        values[slot] = 0
                                        node = step[2]
                                        while node <= fensize:
                                            tree[node] -= old_w
                                            node += node & -node
                                    base = len(pagents)
                                    ppositions[state] = list(
                                        range(base, base + new)
                                    )
                                    pagents.extend([state] * new)
                                    pwhere.extend(range(new))
                                    if new > pmhat:
                                        pmhat = new
                                    pool_w += w
                                    weight += w - old_w
                                else:
                                    w = new * (new - 1)
                                    dw = w - values[slot]
                                    if dw:
                                        values[slot] = w
                                        weight += dw
                                        node = step[2]
                                        while node <= fensize:
                                            tree[node] += dw
                                            node += node & -node
                            else:
                                if delta > 0:
                                    for _ in range(delta):
                                        pwhere.append(len(plist))
                                        plist.append(len(pagents))
                                        pagents.append(state)
                                    if new > pool.hi:
                                        # Expel above the window (see
                                        # the sprint variant).
                                        for _ in range(new):
                                            p = plist.pop()
                                            last = len(pagents) - 1
                                            if p != last:
                                                moved = pagents[last]
                                                mw = pwhere[last]
                                                pagents[p] = moved
                                                pwhere[p] = mw
                                                ppositions[moved][mw] = p
                                            pagents.pop()
                                            pwhere.pop()
                                        ppositions[state] = None
                                        w = new * (new - 1)
                                        pool_w -= old * (old - 1)
                                        weight -= old * (old - 1)
                                        slot = step[1]
                                        values[slot] = w
                                        node = step[2]
                                        while node <= fensize:
                                            tree[node] += w
                                            node += node & -node
                                        weight += w
                                        continue
                                else:
                                    removals = -delta if new >= 2 else old
                                    for _ in range(removals):
                                        p = plist.pop()
                                        last = len(pagents) - 1
                                        if p != last:
                                            moved = pagents[last]
                                            mw = pwhere[last]
                                            pagents[p] = moved
                                            pwhere[p] = mw
                                            ppositions[moved][mw] = p
                                        pagents.pop()
                                        pwhere.pop()
                                    if new < 2:
                                        # Expel: weightless members only
                                        # dilute proposal acceptance.
                                        ppositions[state] = None
                                dw = new * (new - 1) - old * (old - 1)
                                if dw:
                                    pool_w += dw
                                    weight += dw
                        else:
                            step[1].on_count_change(state, old, new)
                # One deferred weight refresh per touched composite
                # slot — a plain values[] write, composite slots live
                # outside the Fenwick tree.
                for ref in entry[4]:
                    rkind = ref[1]
                    if rkind == TRIANGULAR:
                        tri = ref[2]
                        s_ = tri.s
                        q_ = tri.q
                        w = (q_ - s_) + (s_ * s_ - q_) // 2
                    elif rkind == PRODUCT:
                        prod = ref[2]
                        w = prod.init_total * prod.resp_total
                    else:
                        w = ref[2].weight
                    slot = ref[0]
                    weight += w - values[slot]
                    values[slot] = w
            else:
                # Dynamic delta (compile_transitions opted out).  The
                # generic update path reads and writes the shared pool
                # weight, so sync the deferred local around it.
                if pool is not None:
                    values[pslot] = pool_w
                    pool.weight = pool_w
                    pool.mhat = pmhat
                out = protocol.delta(si, sj)
                if out is None:
                    raise SimulationError(
                        f"families sampled null pair ({si}, {sj}) — "
                        "family coverage does not match delta"
                    )
                ti, tj = out
                for state, delta in _transition_ops(si, sj, ti, tj):
                    old = counts[state]
                    new = old + delta
                    if new < 0:
                        raise SimulationError(
                            f"state {state} count went negative applying "
                            "transition"
                        )
                    counts[state] = new
                    if new > gmax:
                        gmax = new
                    weight += fused.apply_count_change(state, old, new)
                if pool is not None:
                    pool_w = pool.weight
                    pmhat = pool.mhat
            events += 1
            remaining -= 1
            reclassify_left -= 1
            reclassify_cooldown -= 1
            if reclassify_left <= 0:
                reclassify_left = _RECLASSIFY_EVENTS
                reclassify_cooldown = _RECLASSIFY_COOLDOWN
                gmax = max(counts)
                if pool is not None:
                    # Re-partition pool vs Fenwick from the live counts.
                    # All pool arrays mutate in place, so every local
                    # alias above stays valid; the total is unchanged.
                    fused.reclassify(counts)
                    pool_w = pool.weight
                    pmhat = pool.mhat
                    if instr_on:
                        c_reclass += 1
        if pool is not None:
            values[pslot] = pool_w
            pool.weight = pool_w
            pool.mhat = pmhat
        self._weight = weight
        fused.total = weight
        self.interactions = interactions
        self.events = events
        if ins is not None:
            # Draw totals by batch-consumption arithmetic: full batches
            # refilled minus whatever is left unconsumed in the tail.
            cu = nub * _UNIFORM_BATCH - (_UNIFORM_BATCH - upos) if nub else 0
            cr = nrb * _RAW_BATCH - (raw_len - rpos) if nrb else 0
            cs = nsb * _RAW_BATCH - (sraw_len - spos) if nsb else 0
            ins.add_counters(
                events=events - events0,
                interactions=interactions - interactions0,
                skip_draws=cu,
                raw_draws=cr + cs,
                proposal_draws=c_prop,
                pool_draws=c_sprint + c_pool,
                sprint_events=c_sprint,
                fenwick_finds=c_fen,
                composite_finds=c_comp,
                reclassifications=c_reclass,
            )
        # Canonicalise the sampler at the run boundary: the pool
        # partition and any stale product sides drift with the loop's
        # history, so one in-place resync makes the post-run state a
        # pure function of the final counts — the same re-partition the
        # loop performs every ``_RECLASSIFY_EVENTS``, and the contract
        # the checkpoint seam (``snapshot``/``restore``) relies on for
        # bit-identical resumption.
        if not fused.resync(counts):
            self._rebuild_fused(counts)
        # Discard any shared buffered draws so later step() calls start
        # from fresh batches of the (advanced) generator stream.
        self._uniform_pos = _UNIFORM_BATCH
        self._raws = []
        self._raw_pos = 0
        if self._debug:
            self._assert_weight_sync()
        return weight == 0

    def _run_fast_same_state(self, max_events: Optional[int]) -> bool:
        """Adaptive dual-sampler loop for same-state-only protocols.

        Alternates between the O(1) proposal sampler (efficient while
        the acceptance rate ``W/(n·M̂)`` is high) and an inlined Fenwick
        sampler (efficient in the low-weight drain toward silence), with
        a 2× hysteresis band so mode switches — each O(n) to rebuild the
        active sampler's structure — stay rare.  Both samplers draw from
        the exact jump-chain distribution; only the constant factor
        differs.  The fused index is left stale inside the loop and
        rebuilt from the final counts on exit.
        """
        protocol = self._protocol
        rng = self._rng
        counts = self.counts
        table = self._ss_table
        num_states = self._num_states
        n = protocol.num_agents
        total_pairs = self._total_pairs
        log1p, ceil = math.log1p, math.ceil

        weight = self._weight
        interactions = self.interactions
        events = self.events
        # max(0, ...): an already-exhausted budget must stop immediately,
        # not underflow past the -1 "unlimited" sentinel.
        remaining = -1 if max_events is None else max(0, max_events - events)
        # Telemetry: batch-refill tallies are unconditional (once per
        # 8192 draws); everything per-event or per-segment is gated on
        # `instr_on` and flushed once at loop exit.
        ins = self._instr
        instr_on = ins is not None
        events0 = events
        interactions0 = interactions
        nub = nrb = npb = 0
        c_pdisc = c_prop_events = c_fen_events = c_modes = 0

        # Skip draws are consumed as precomputed log(1-u): the geometric
        # inverse-CDF needs only ceil(log(1-u)/log(1-p)), and batching
        # the numerator log through numpy is ~3x cheaper than math.log
        # per event.  log(1-u) >= log(1-p) iff skip == 1.
        lus: List[float] = []
        upos = _UNIFORM_BATCH  # empty buffer — filled on first use
        raws: List[int] = []
        rpos = 0

        mhat = max(counts)  # upper bound on the maximum count
        while remaining != 0 and weight:
            if 4 * weight >= n * mhat:
                # ---- proposal sampler ------------------------------------
                # Agent identities are exchangeable: any assignment
                # consistent with the counts yields the exact law of the
                # counts process, so members lists are (re)built freely.
                agent_state = np.repeat(
                    np.arange(num_states), counts
                ).tolist()
                members: List[List[int]] = []
                next_id = 0
                for c in counts:
                    members.append(list(range(next_id, next_id + c)))
                    next_id += c
                # One draw v in [0, n*mhat) fuses the proposal with its
                # acceptance test: a = v // mhat is a uniform agent and
                # t = v % mhat an independent uniform threshold, so
                # accepting iff t < c_a - 1 hits state s with probability
                # exactly c_s(c_s - 1)/(n*mhat) — proportional to its
                # weight.  Batches are discarded whenever mhat changes.
                prop_bound = n * mhat
                demote_bound = (prop_bound + 7) // 8  # weight < this ⇔ 8W < n·mhat
                props: List[int] = []
                ppos = 0
                refresh = _REFRESH_EVENTS
                c_modes += 1
                seg0 = events
                while remaining != 0 and weight:
                    if weight < demote_bound:
                        break  # acceptance too low — switch to Fenwick
                    if refresh == 0:
                        refresh = _REFRESH_EVENTS
                        exact_max = max(counts)
                        if exact_max != mhat:
                            mhat = exact_max
                            prop_bound = n * mhat
                            demote_bound = (prop_bound + 7) // 8
                            if instr_on:
                                c_pdisc += len(props) - ppos
                            ppos = len(props)
                    # Geometric skip.
                    if weight >= total_pairs:
                        interactions += 1
                    else:
                        if upos == _UNIFORM_BATCH:
                            lus = np.log1p(
                                -rng.random(_UNIFORM_BATCH)
                            ).tolist()
                            upos = 0
                            nub += 1
                        lu = lus[upos]
                        upos += 1
                        lp = log1p(-weight / total_pairs)
                        if lu >= lp:
                            interactions += 1
                        else:
                            interactions += ceil(lu / lp)
                    # Propose until acceptance.
                    while True:
                        if ppos == len(props):
                            props = rng.integers(
                                0, prop_bound, size=_AGENT_BATCH
                            ).tolist()
                            ppos = 0
                            npb += 1
                        v = props[ppos]
                        ppos += 1
                        s = agent_state[v // mhat]
                        if v % mhat < counts[s] - 1:
                            entry = table[s]
                            if entry is not None:
                                break
                    ti, tj, ops = entry
                    for st, d, w in ops:
                        c0 = counts[st]
                        c1 = c0 + d
                        counts[st] = c1
                        if w:
                            weight += w * (c0 + c1 - 1)
                        if c1 > mhat:
                            mhat = c1
                            prop_bound = n * mhat
                            demote_bound = (prop_bound + 7) // 8
                            if instr_on:
                                c_pdisc += len(props) - ppos
                            ppos = len(props)
                    moved = members[s]
                    a1 = moved.pop()
                    a2 = moved.pop()
                    members[ti].append(a1)
                    agent_state[a1] = ti
                    members[tj].append(a2)
                    agent_state[a2] = tj
                    events += 1
                    remaining -= 1
                    refresh -= 1
                if instr_on:
                    c_prop_events += events - seg0
                    c_pdisc += len(props) - ppos
            else:
                # ---- Fenwick sampler -------------------------------------
                fenwick = FenwickTree.from_values(
                    counts[s] * (counts[s] - 1)
                    if table[s] is not None else 0
                    for s in range(num_states)
                )
                tree = fenwick._tree
                values = fenwick._values
                highbit = 1 << (num_states.bit_length() - 1)
                refresh = _REFRESH_EVENTS
                c_modes += 1
                seg0 = events
                while remaining != 0 and weight:
                    if refresh == 0:
                        refresh = _REFRESH_EVENTS
                        mhat = max(counts)
                        if 4 * weight >= n * mhat:
                            break  # acceptance recovered — switch back
                    # Geometric skip.
                    if weight >= total_pairs:
                        interactions += 1
                    else:
                        if upos == _UNIFORM_BATCH:
                            lus = np.log1p(
                                -rng.random(_UNIFORM_BATCH)
                            ).tolist()
                            upos = 0
                            nub += 1
                        lu = lus[upos]
                        upos += 1
                        lp = log1p(-weight / total_pairs)
                        if lu >= lp:
                            interactions += 1
                        else:
                            interactions += ceil(lu / lp)
                    # Exact uniform target in [0, weight).
                    while True:
                        if rpos == len(raws):
                            raws = rng.integers(
                                0, _RAW_SPAN, size=_RAW_BATCH,
                                dtype=np.uint64,
                            ).tolist()
                            rpos = 0
                            nrb += 1
                        raw = raws[rpos]
                        rpos += 1
                        target = raw % weight
                        if raw - target <= _RAW_SPAN - weight:
                            break
                    # Inlined FenwickTree.find.
                    pos = 0
                    bit = highbit
                    while bit:
                        nxt = pos + bit
                        if nxt <= num_states:
                            below = tree[nxt]
                            if below <= target:
                                target -= below
                                pos = nxt
                        bit >>= 1
                    ti, tj, ops = table[pos]
                    for st, d, w in ops:
                        c0 = counts[st]
                        c1 = c0 + d
                        counts[st] = c1
                        if w:
                            dw = w * (c0 + c1 - 1)
                            if dw:
                                values[st] += dw
                                weight += dw
                                node = st + 1
                                while node <= num_states:
                                    tree[node] += dw
                                    node += node & -node
                    events += 1
                    remaining -= 1
                    refresh -= 1
                if instr_on:
                    c_fen_events += events - seg0
            mhat = max(counts)

        self.interactions = interactions
        self.events = events
        if ins is not None:
            cu = nub * _UNIFORM_BATCH - (_UNIFORM_BATCH - upos) if nub else 0
            cr = nrb * _RAW_BATCH - (len(raws) - rpos) if nrb else 0
            ins.add_counters(
                events=events - events0,
                interactions=interactions - interactions0,
                skip_draws=cu,
                raw_draws=cr,
                proposal_draws=npb * _AGENT_BATCH - c_pdisc,
                pool_draws=c_prop_events,
                proposal_mode_events=c_prop_events,
                fenwick_mode_events=c_fen_events,
                fenwick_finds=c_fen_events,
                mode_switches=c_modes - 1 if c_modes else 0,
            )
        # The loop mutated counts without notifying the fused index;
        # resync it so step()/recorders stay usable after a fast run.
        if not self._fused.resync(counts):
            self._rebuild_fused(counts)
        self._weight = weight
        # Discard any shared buffered draws so later step() calls start
        # from fresh batches of the (advanced) generator stream.
        self._uniform_pos = _UNIFORM_BATCH
        self._raws = []
        self._raw_pos = 0
        if self._debug:
            self._assert_weight_sync()
        return weight == 0
