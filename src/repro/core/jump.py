"""Exact jump-chain simulation of the random pairwise scheduler.

The naive scheduler draws ``T = n(n−1)`` equally likely ordered agent
pairs per step and most draws are null.  Conditioned on the current
configuration, the number of steps until the next *productive*
interaction is geometric with success probability ``p = W/T`` (``W`` =
current number of productive ordered pairs), and the productive pair
itself is uniform over the ``W`` possibilities.  The jump engine samples
exactly that: a geometric skip via inverse-CDF from a uniform, then a
weighted pair draw from the protocol's weight families.  The resulting
joint distribution of (trajectory, interaction counts) is identical to
the naive process — there is no approximation.

Cost is ``O(log N)`` per *productive* event, independent of how many
null interactions are skipped, which is what makes the paper's
``Θ(n²)``-interaction protocols simulatable.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from ..exceptions import SimulationError
from .configuration import Configuration
from .engine import Event, Recorder
from .protocol import PopulationProtocol

__all__ = ["JumpEngine"]

# Above this bound a float64 mantissa can no longer index pairs exactly.
_MAX_EXACT = 1 << 53

_UNIFORM_BATCH = 8192


class JumpEngine:
    """Drives one protocol run; create a new engine per run."""

    def __init__(
        self,
        protocol: PopulationProtocol,
        configuration: Configuration,
        rng: np.random.Generator,
    ) -> None:
        protocol.validate_configuration(configuration)
        n = protocol.num_agents
        if n * (n - 1) >= _MAX_EXACT:
            raise SimulationError(
                f"population {n} too large for exact float-indexed sampling"
            )
        self._protocol = protocol
        self._rng = rng
        self.counts: List[int] = configuration.counts_list()
        self._families = protocol.build_families(self.counts)
        self._total_pairs = n * (n - 1)
        self.interactions = 0
        self.events = 0
        self._uniforms = rng.random(_UNIFORM_BATCH)
        self._uniform_pos = 0

    # ------------------------------------------------------------------
    # Randomness helpers
    # ------------------------------------------------------------------
    def _next_uniform(self) -> float:
        pos = self._uniform_pos
        if pos == _UNIFORM_BATCH:
            self._uniforms = self._rng.random(_UNIFORM_BATCH)
            pos = 0
        self._uniform_pos = pos + 1
        return self._uniforms[pos]

    def rand_below(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)``; ``bound`` must be positive."""
        value = int(self._next_uniform() * bound)
        # Guard the (measure-zero, float-rounding) edge value == bound.
        return bound - 1 if value >= bound else value

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    @property
    def productive_weight(self) -> int:
        """Current number of productive ordered pairs ``W``."""
        return sum(family.weight for family in self._families)

    def is_silent(self) -> bool:
        """True iff no productive interaction exists."""
        return self.productive_weight == 0

    def _geometric_skip(self, weight: int) -> int:
        """Steps until the next productive interaction (>= 1), exact."""
        p = weight / self._total_pairs
        if p >= 1.0:
            return 1
        # Inverse CDF of Geometric(p) on {1, 2, ...} from u in (0, 1].
        u = 1.0 - self._next_uniform()
        skip = math.ceil(math.log(u) / math.log1p(-p))
        return skip if skip >= 1 else 1

    def _sample_pair(self, weight: int) -> tuple:
        target = self.rand_below(weight)
        for family in self._families:
            fw = family.weight
            if target < fw:
                return family.sample(self.rand_below)
            target -= fw
        raise SimulationError("family weights changed during sampling")

    def _apply(self, si: int, sj: int, ti: int, tj: int) -> None:
        """Move initiator ``si→ti`` and responder ``sj→tj`` with notifications."""
        counts = self._counts_delta(si, sj, ti, tj)
        for state, delta in counts:
            old = self.counts[state]
            new = old + delta
            if new < 0:
                raise SimulationError(
                    f"state {state} count went negative applying "
                    f"({si},{sj})→({ti},{tj})"
                )
            self.counts[state] = new
            for family in self._families:
                family.on_count_change(state, old, new)

    @staticmethod
    def _counts_delta(si: int, sj: int, ti: int, tj: int):
        """Net per-state count changes of one transition, deduplicated."""
        delta: dict = {}
        delta[si] = delta.get(si, 0) - 1
        delta[sj] = delta.get(sj, 0) - 1
        delta[ti] = delta.get(ti, 0) + 1
        delta[tj] = delta.get(tj, 0) + 1
        return [(s, d) for s, d in delta.items() if d != 0]

    def step(self) -> Optional[Event]:
        """Advance to (and apply) the next productive interaction.

        Returns ``None`` when the configuration is silent.
        """
        weight = self.productive_weight
        if weight == 0:
            return None
        self.interactions += self._geometric_skip(weight)
        si, sj = self._sample_pair(weight)
        out = self._protocol.delta(si, sj)
        if out is None:
            raise SimulationError(
                f"families sampled null pair ({si}, {sj}) — "
                "family coverage does not match delta"
            )
        ti, tj = out
        self._apply(si, sj, ti, tj)
        self.events += 1
        return Event(self.interactions, si, sj, ti, tj)

    def run(
        self,
        max_interactions: Optional[int] = None,
        recorder: Optional[Recorder] = None,
        max_events: Optional[int] = None,
    ) -> bool:
        """Run until silence or budget exhaustion; True iff silent.

        When the geometric skip would overshoot ``max_interactions`` the
        clock is clamped to the budget and the pending productive event
        is *not* applied (no interaction beyond the budget happened).
        ``max_events`` additionally bounds the number of *productive*
        events — the engine's actual work — which is the effective guard
        for runs that churn without converging.
        """
        if recorder is not None:
            recorder.on_start(self.counts)
        protocol = self._protocol
        families = self._families
        silent = False
        while True:
            if max_events is not None and self.events >= max_events:
                break
            weight = 0
            for family in families:
                weight += family.weight
            if weight == 0:
                silent = True
                break
            skip = self._geometric_skip(weight)
            if (
                max_interactions is not None
                and self.interactions + skip > max_interactions
            ):
                self.interactions = max_interactions
                break
            self.interactions += skip
            si, sj = self._sample_pair(weight)
            out = protocol.delta(si, sj)
            if out is None:
                raise SimulationError(
                    f"families sampled null pair ({si}, {sj}) — "
                    "family coverage does not match delta"
                )
            ti, tj = out
            self._apply(si, sj, ti, tj)
            self.events += 1
            if recorder is not None:
                recorder.on_event(
                    Event(self.interactions, si, sj, ti, tj), self.counts
                )
        if recorder is not None:
            recorder.on_finish(silent, self.interactions, self.counts)
        return silent
