"""Fenwick (binary indexed) tree over non-negative integer weights.

The simulation engine needs two operations on a vector of per-state
weights, both on the hot path of every productive interaction:

* update the weight of one state in ``O(log N)``, and
* sample a state with probability proportional to its weight, which is a
  prefix-sum search, also ``O(log N)``.

Weights here are plain Python integers (pair counts), so all arithmetic
is exact — no floating point drift can bias the sampler.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["FenwickTree", "fill_tree"]


def fill_tree(tree: List[int], size: int, values: Sequence[int]) -> int:
    """(Re)build a raw Fenwick array in place; returns the total.

    ``tree`` must have ``size + 1`` entries; ``values`` may be shorter
    than ``size`` (missing slots count as zero — used for power-of-two
    padded trees, whose top node is then the total).  In-place filling
    matters: hot loops hold direct references to the list, so a resync
    must not swap the object out from under them.  The classic O(N)
    push-up: every node forwards its accumulated partial sum to its
    parent, in index order.
    """
    for i in range(size + 1):
        tree[i] = 0
    total = 0
    num_values = len(values)
    for i in range(size):
        pos = i + 1
        if i < num_values:
            value = values[i]
            total += value
            tree[pos] += value
        acc = tree[pos]
        if acc:
            parent = pos + (pos & -pos)
            if parent <= size:
                tree[parent] += acc
    return total


class FenwickTree:
    """Prefix-sum tree over ``size`` slots of non-negative integers.

    Slots are indexed ``0..size-1``.  The tree stores the weights
    redundantly (``self._values``) so single-slot reads are O(1).
    """

    __slots__ = ("_size", "_tree", "_values", "_total")

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError(f"FenwickTree size must be >= 0, got {size}")
        self._size = size
        self._tree: List[int] = [0] * (size + 1)
        self._values: List[int] = [0] * size
        self._total = 0

    @classmethod
    def from_values(cls, values: Iterable[int]) -> "FenwickTree":
        """Build a tree from an iterable of initial weights in O(N)."""
        values = list(values)
        tree = cls(len(values))
        tree._values = values
        tree._total = fill_tree(tree._tree, len(values), values)
        return tree

    @property
    def size(self) -> int:
        """Number of slots."""
        return self._size

    @property
    def total(self) -> int:
        """Sum of all weights (cached, O(1))."""
        return self._total

    def get(self, index: int) -> int:
        """Current weight of ``index`` (O(1))."""
        return self._values[index]

    def set(self, index: int, value: int) -> None:
        """Set slot ``index`` to ``value`` (O(log N))."""
        if value < 0:
            raise ValueError(f"Fenwick weights must be >= 0, got {value}")
        delta = value - self._values[index]
        if delta == 0:
            return
        self._values[index] = value
        self._total += delta
        pos = index + 1
        tree = self._tree
        size = self._size
        while pos <= size:
            tree[pos] += delta
            pos += pos & -pos

    def add(self, index: int, delta: int) -> None:
        """Add ``delta`` to slot ``index`` (O(log N))."""
        self.set(index, self._values[index] + delta)

    def prefix_sum(self, index: int) -> int:
        """Sum of weights of slots ``0..index-1`` (O(log N))."""
        total = 0
        tree = self._tree
        pos = index
        while pos > 0:
            total += tree[pos]
            pos -= pos & -pos
        return total

    def find(self, target: int) -> int:
        """Smallest index ``i`` with ``prefix_sum(i + 1) > target``.

        Equivalently: the slot selected by a weighted draw when
        ``target`` is uniform over ``[0, total)``.  Requires
        ``0 <= target < total``.
        """
        if not 0 <= target < self._total:
            raise ValueError(
                f"find target {target} outside [0, {self._total})"
            )
        pos = 0
        # Highest power of two <= size.
        bit = 1 << (self._size.bit_length() - 1) if self._size else 0
        tree = self._tree
        size = self._size
        while bit:
            nxt = pos + bit
            if nxt <= size and tree[nxt] <= target:
                target -= tree[nxt]
                pos = nxt
            bit >>= 1
        return pos

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        preview = self._values[:8]
        suffix = "..." if self._size > 8 else ""
        return f"FenwickTree(size={self._size}, total={self._total}, values={preview}{suffix})"
