"""Abstract base classes for population protocols.

Two layers:

* :class:`PopulationProtocol` — the bare model: a finite state space,
  a population size, and a transition function over ordered pairs.
* :class:`RankingProtocol` — the paper's setting: the first ``n`` state
  indices are the *rank states* (rank ``r`` is state ``r``; rank 0 is
  the leader) and any remaining indices are *extra states*.

Protocols are immutable descriptions; all mutable simulation state lives
in the engines.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError, ProtocolError
from .configuration import Configuration
from .families import Family, SameStatePairs

__all__ = ["PopulationProtocol", "RankingProtocol", "Transition"]

# A transition outcome: (new initiator state, new responder state).
Transition = Tuple[int, int]


class PopulationProtocol(ABC):
    """A population protocol over states ``0..num_states-1``.

    Subclasses must implement :meth:`delta`.  The default
    :meth:`build_families` assumes all productive pairs are same-state
    pairs, which holds for every *state-optimal* protocol (the paper
    proves such protocols admit only ``(s, s)`` rules); protocols with
    cross-state rules override it.
    """

    #: Engines may precompile ``delta`` into per-pair lookup tables (the
    #: transition function must then be pure: the same ``(si, sj)``
    #: always maps to the same outcome).  Every protocol in the paper is
    #: pure; set this to False on subclasses whose ``delta`` is stateful
    #: or randomised, forcing the engines back onto dynamic dispatch.
    compile_transitions: bool = True

    def __init__(self, num_states: int, num_agents: int) -> None:
        if num_states <= 0:
            raise ProtocolError(f"num_states must be positive, got {num_states}")
        if num_agents <= 1:
            raise ProtocolError(
                f"population protocols need at least 2 agents, got {num_agents}"
            )
        self._num_states = num_states
        self._num_agents = num_agents

    # ------------------------------------------------------------------
    # Core interface
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        """Size of the state space."""
        return self._num_states

    @property
    def num_agents(self) -> int:
        """Population size ``n``."""
        return self._num_agents

    @abstractmethod
    def delta(self, initiator: int, responder: int) -> Optional[Transition]:
        """Transition function.

        Returns the pair of successor states, or ``None`` for a null
        interaction (both agents keep their states).
        """

    # ------------------------------------------------------------------
    # Engine integration
    # ------------------------------------------------------------------
    def same_state_rule_states(self) -> List[int]:
        """States ``s`` whose pair ``(s, s)`` is productive."""
        return [
            s for s in range(self._num_states) if self.delta(s, s) is not None
        ]

    def build_families(self, counts: Sequence[int]) -> List[Family]:
        """Weight families covering this protocol's productive pairs.

        The default covers same-state rules only; override when the
        protocol has cross-state rules (and keep the families' pair sets
        disjoint — validated by
        :func:`repro.core.families.check_family_coverage`).
        """
        return [SameStatePairs(counts, self.same_state_rule_states())]

    # ------------------------------------------------------------------
    # Conveniences
    # ------------------------------------------------------------------
    def is_silent(self, configuration: Configuration) -> bool:
        """True iff no productive interaction is possible."""
        counts = configuration.counts_list()
        families = self.build_families(counts)
        return sum(f.weight for f in families) == 0

    def validate_configuration(self, configuration: Configuration) -> None:
        """Raise :class:`ConfigurationError` unless ``configuration`` fits."""
        if configuration.num_states != self._num_states:
            raise ConfigurationError(
                f"configuration has {configuration.num_states} states, "
                f"protocol has {self._num_states}"
            )
        if configuration.num_agents != self._num_agents:
            raise ConfigurationError(
                f"configuration has {configuration.num_agents} agents, "
                f"protocol has {self._num_agents}"
            )

    def state_label(self, state: int) -> str:
        """Human-readable name of a state (overridable)."""
        return str(state)

    @property
    def name(self) -> str:
        """Short protocol name used in results and tables."""
        return type(self).__name__

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(num_states={self._num_states}, "
            f"num_agents={self._num_agents})"
        )


class RankingProtocol(PopulationProtocol):
    """A self-stabilising ranking protocol.

    Conventions (shared by every protocol in the paper):

    * the population has ``n = num_agents`` agents;
    * states ``0..n-1`` are the rank states — state ``r`` *is* rank ``r``;
    * states ``n..num_states-1`` are the extra states
      (``x = num_states - n`` of them);
    * the final silent configuration has exactly one agent per rank state
      and no agent in any extra state;
    * the agent stabilising in rank 0 is the elected leader.
    """

    def __init__(self, num_agents: int, num_extra_states: int = 0) -> None:
        if num_extra_states < 0:
            raise ProtocolError(
                f"num_extra_states must be >= 0, got {num_extra_states}"
            )
        super().__init__(num_agents + num_extra_states, num_agents)

    @property
    def num_ranks(self) -> int:
        """Number of rank states (== population size)."""
        return self._num_agents

    @property
    def num_extra_states(self) -> int:
        """Number of extra (non-rank) states ``x``."""
        return self._num_states - self._num_agents

    @property
    def rank_states(self) -> range:
        """The rank states ``0..n-1``."""
        return range(self._num_agents)

    @property
    def extra_states(self) -> range:
        """The extra states ``n..num_states-1`` (may be empty)."""
        return range(self._num_agents, self._num_states)

    @property
    def leader_state(self) -> int:
        """Rank whose holder is the elected leader."""
        return 0

    def is_ranked(self, configuration: Configuration) -> bool:
        """True iff every rank holds exactly one agent and extras are empty."""
        return configuration.is_ranked(self.num_ranks)

    def solved_configuration(self) -> Configuration:
        """The (unique up to agent identity) final silent configuration."""
        counts = [1] * self.num_ranks + [0] * self.num_extra_states
        return Configuration(counts)
