"""Exception hierarchy for the :mod:`repro` library.

Every error deliberately raised by the library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An agent configuration is malformed or inconsistent with a protocol.

    Raised, for example, when the number of agents does not match the
    protocol population size, or when a state index is out of range.
    """


class ProtocolError(ReproError):
    """A protocol was constructed with invalid parameters.

    Examples: a ring of traps with fewer states than agents, a line
    protocol with an odd lattice parameter ``m``, or a tree protocol
    with a non-positive reset-line length.
    """


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent internal state.

    This signals a bug (e.g. a weight family sampled a pair the
    transition function considers null) rather than a user error.
    """


class SimulationLimitReached(ReproError):
    """A run exceeded its ``max_interactions`` budget without silence.

    Engines normally *return* a non-silent :class:`~repro.core.engine.RunResult`
    when the budget is exhausted; this exception is only raised when the
    caller explicitly asked for ``require_silence=True``.
    """


class ExperimentError(ReproError):
    """An experiment was invoked with an unknown id, scale, or parameters."""
