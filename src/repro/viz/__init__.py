"""Plain-text renderers for traps, rings, lines, trees, and graph G."""

from .ascii import (
    render_line,
    render_ring,
    render_routing_graph,
    render_trap,
    render_tree,
)

__all__ = [
    "render_line",
    "render_ring",
    "render_routing_graph",
    "render_trap",
    "render_tree",
]
