"""Text renderings of the paper's structures (figures, live state).

Everything here returns plain strings — no plotting dependencies — and
is shared by the examples, the CLI ``render`` command, and the figure
benchmarks that regenerate the paper's Figure 1 and Figure 2.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..protocols.line import LineOfTrapsProtocol
from ..protocols.ring import RingOfTrapsProtocol
from ..protocols.routing import RoutingGraph
from ..protocols.trap import TrapLayout
from ..protocols.tree import NodeKind, PerfectlyBalancedTree

__all__ = [
    "render_tree",
    "render_routing_graph",
    "render_trap",
    "render_ring",
    "render_line",
]

_KIND_MARK = {
    NodeKind.LEAF: "leaf",
    NodeKind.NON_BRANCHING: "·",
    NodeKind.BRANCHING: "⑂",
}


def render_tree(
    tree: PerfectlyBalancedTree, counts: Optional[Sequence[int]] = None
) -> str:
    """Indented pre-order rendering of the tree of ranks (Figure 2 style).

    With ``counts`` given, each node also shows its current occupancy.
    """
    lines = [
        f"perfectly balanced tree, n={tree.size}, height={tree.height}"
    ]

    def visit(node: int) -> None:
        indent = "  " * tree.level(node)
        mark = _KIND_MARK[tree.kind(node)]
        occupancy = (
            f"  [{counts[node]} agent(s)]" if counts is not None else ""
        )
        lines.append(f"{indent}{node} {mark}{occupancy}")
        for child in tree.children(node):
            visit(child)

    visit(0)
    return "\n".join(lines)


def render_routing_graph(graph: RoutingGraph) -> str:
    """Adjacency rendering of the cubic graph ``G`` (Figure 1 style)."""
    lines = [
        f"routing graph G: {graph.num_vertices} lines, "
        f"cubic={graph.is_cubic()}, diameter={graph.diameter()}"
    ]
    for vertex in graph.vertices:
        l0, l1, l2 = graph.neighbours(vertex)
        lines.append(f"  line {vertex:>3}: l0={l0:<3} l1={l1:<3} l2={l2:<3}")
    return "\n".join(lines)


def _bar(count: int) -> str:
    if count == 0:
        return "."
    if count <= 9:
        return str(count)
    return "*"


def render_trap(
    trap: TrapLayout, counts: Sequence[int], label: str = "trap"
) -> str:
    """One-line occupancy map of a trap: gate first, then inner states.

    Digits are agent counts (``.`` empty, ``*`` for 10+); e.g.
    ``[2|1.13]`` is a gate with two agents and a gap at inner state 2.
    """
    gate = _bar(counts[trap.gate])
    inner = "".join(_bar(counts[s]) for s in trap.inner_states)
    return f"{label}[{gate}|{inner}]"


def render_ring(
    protocol: RingOfTrapsProtocol, counts: Sequence[int]
) -> str:
    """Occupancy of every trap around the ring."""
    lines = [f"ring of traps, m={protocol.m}, n={protocol.num_agents}"]
    for index, trap in enumerate(protocol.traps):
        lines.append("  " + render_trap(trap, counts, label=f"a={index:<3} "))
    return "\n".join(lines)


def render_line(
    protocol: LineOfTrapsProtocol, counts: Sequence[int], line: int
) -> str:
    """Occupancy of one line, exit trap (a=1) first, plus the X count."""
    parts: List[str] = [
        f"line {line + 1} (exit → entrance), X holds "
        f"{counts[protocol.x_state]} agent(s)"
    ]
    for a in range(1, protocol.traps_per_line + 1):
        trap = protocol.trap(line, a)
        parts.append("  " + render_trap(trap, counts, label=f"a={a:<3} "))
    return "\n".join(parts)
