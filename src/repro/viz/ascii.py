"""Text renderings of the paper's structures (figures, live state).

Everything here returns plain strings — no plotting dependencies — and
is shared by the examples, the CLI ``render`` command, and the figure
benchmarks that regenerate the paper's Figure 1 and Figure 2.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..protocols.line import LineOfTrapsProtocol
from ..protocols.ring import RingOfTrapsProtocol
from ..protocols.routing import RoutingGraph
from ..protocols.trap import TrapLayout
from ..protocols.tree import NodeKind, PerfectlyBalancedTree

__all__ = [
    "render_tree",
    "render_routing_graph",
    "render_trap",
    "render_ring",
    "render_line",
    "render_trend_table",
    "render_ensemble_progress",
]

_KIND_MARK = {
    NodeKind.LEAF: "leaf",
    NodeKind.NON_BRANCHING: "·",
    NodeKind.BRANCHING: "⑂",
}


def render_tree(
    tree: PerfectlyBalancedTree, counts: Optional[Sequence[int]] = None
) -> str:
    """Indented pre-order rendering of the tree of ranks (Figure 2 style).

    With ``counts`` given, each node also shows its current occupancy.
    """
    lines = [
        f"perfectly balanced tree, n={tree.size}, height={tree.height}"
    ]

    def visit(node: int) -> None:
        indent = "  " * tree.level(node)
        mark = _KIND_MARK[tree.kind(node)]
        occupancy = (
            f"  [{counts[node]} agent(s)]" if counts is not None else ""
        )
        lines.append(f"{indent}{node} {mark}{occupancy}")
        for child in tree.children(node):
            visit(child)

    visit(0)
    return "\n".join(lines)


def render_routing_graph(graph: RoutingGraph) -> str:
    """Adjacency rendering of the cubic graph ``G`` (Figure 1 style)."""
    lines = [
        f"routing graph G: {graph.num_vertices} lines, "
        f"cubic={graph.is_cubic()}, diameter={graph.diameter()}"
    ]
    for vertex in graph.vertices:
        l0, l1, l2 = graph.neighbours(vertex)
        lines.append(f"  line {vertex:>3}: l0={l0:<3} l1={l1:<3} l2={l2:<3}")
    return "\n".join(lines)


def _bar(count: int) -> str:
    if count == 0:
        return "."
    if count <= 9:
        return str(count)
    return "*"


def render_trap(
    trap: TrapLayout, counts: Sequence[int], label: str = "trap"
) -> str:
    """One-line occupancy map of a trap: gate first, then inner states.

    Digits are agent counts (``.`` empty, ``*`` for 10+); e.g.
    ``[2|1.13]`` is a gate with two agents and a gap at inner state 2.
    """
    gate = _bar(counts[trap.gate])
    inner = "".join(_bar(counts[s]) for s in trap.inner_states)
    return f"{label}[{gate}|{inner}]"


def render_ring(
    protocol: RingOfTrapsProtocol, counts: Sequence[int]
) -> str:
    """Occupancy of every trap around the ring."""
    lines = [f"ring of traps, m={protocol.m}, n={protocol.num_agents}"]
    for index, trap in enumerate(protocol.traps):
        lines.append("  " + render_trap(trap, counts, label=f"a={index:<3} "))
    return "\n".join(lines)


_SPARK_MARKS = "▁▂▃▄▅▆▇█"


def _sparkline(values: Sequence[float]) -> str:
    """Unicode sparkline of a value series (empty-safe)."""
    if not values:
        return ""
    lo = min(values)
    hi = max(values)
    if hi <= lo:
        return _SPARK_MARKS[3] * len(values)
    span = hi - lo
    top = len(_SPARK_MARKS) - 1
    return "".join(
        _SPARK_MARKS[round((v - lo) / span * top)] for v in values
    )


def render_trend_table(
    rows: Sequence[Dict[str, str]], last: int = 12
) -> str:
    """ASCII trend table of a bench history (nightly job summaries).

    ``rows`` is the parsed ``bench_history.csv``
    (:func:`repro.analysis.bench.read_bench_history`): one row per case
    per run.  Each case renders its latest ratio and events/s, the
    drift against the previous run, and a sparkline over the last
    ``last`` runs — enough to spot a slow regression that each
    individual 15%-tolerance gate would let through.
    """
    if not rows:
        return "(no bench history yet — run the nightly bench to seed it)"
    by_case: Dict[str, List[Dict[str, str]]] = {}
    order: List[str] = []
    for row in rows:
        case = row["case"]
        if case not in by_case:
            by_case[case] = []
            order.append(case)
        by_case[case].append(row)
    lines = [
        f"{'case':<18} {'metric':<22} {'latest':>8} {'drift':>7} "
        f"{'ev/s':>12}  trend"
    ]
    for case in order:
        history = by_case[case][-last:]
        ratios = [float(row["ratio"]) for row in history]
        latest = history[-1]
        drift = (
            f"{ratios[-1] / ratios[-2] - 1.0:+.1%}"
            if len(ratios) >= 2 and ratios[-2] > 0 else "-"
        )
        lines.append(
            f"{case:<18} {latest['metric']:<22} {ratios[-1]:>7.2f}x "
            f"{drift:>7} {float(latest['events_per_sec']):>12,.0f}  "
            f"{_sparkline(ratios)}"
        )
    return "\n".join(lines)


def _format_eta(eta_s: Optional[float]) -> str:
    if eta_s is None:
        return "-"
    seconds = max(0, int(round(eta_s)))
    if seconds < 60:
        return f"{seconds}s"
    if seconds < 3600:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"


def render_ensemble_progress(
    runs_done: int,
    total_runs: int,
    shards_done: int,
    shards_total: int,
    throughput: Optional[float] = None,
    eta_s: Optional[float] = None,
    quarantined: int = 0,
    retries: int = 0,
    width: int = 30,
) -> str:
    """One-line ASCII dashboard of a running (or resumable) ensemble.

    ``[#####.....] 500/1000 runs | shard 5/10 | 120.0 runs/s | eta 4s``
    plus a trailing fault tally when supervision had to intervene.
    Built for the live ``repro ensemble run --progress`` feed and the
    ``repro ensemble status`` summary line; throughput/ETA render as
    ``-`` until known.
    """
    fraction = runs_done / total_runs if total_runs > 0 else 0.0
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    bar = "#" * filled + "." * (width - filled)
    rate = f"{throughput:,.1f} runs/s" if throughput else "- runs/s"
    parts = [
        f"[{bar}] {runs_done}/{total_runs} runs",
        f"shard {shards_done}/{shards_total}",
        rate,
        f"eta {_format_eta(eta_s)}",
    ]
    if quarantined or retries:
        parts.append(f"faults: {retries} retried, {quarantined} quarantined")
    return " | ".join(parts)


def render_line(
    protocol: LineOfTrapsProtocol, counts: Sequence[int], line: int
) -> str:
    """Occupancy of one line, exit trap (a=1) first, plus the X count."""
    parts: List[str] = [
        f"line {line + 1} (exit → entrance), X holds "
        f"{counts[protocol.x_state]} agent(s)"
    ]
    for a in range(1, protocol.traps_per_line + 1):
        trap = protocol.trap(line, a)
        parts.append("  " + render_trap(trap, counts, label=f"a={a:<3} "))
    return "\n".join(parts)
