"""JobSpec v1: validation, canonical form, digests, legacy adapters."""

import json
import warnings
from pathlib import Path

import pytest

from repro.configurations.generators import random_configuration
from repro.core.engine import run_protocol
from repro.jobspec import JOBSPEC_VERSION, JobSpec, JobSpecError
from repro.protocols import AGProtocol
from repro.scenarios.spec import (
    ProtocolSpec,
    RunPhase,
    Scenario,
    SchedulerSpec,
)

GOLDEN_PATH = Path(__file__).resolve().parent / "golden_jobspec_v1.json"


def simulate_spec(**overrides):
    kwargs = dict(protocol="ag", n=30, start="random", seed=7)
    kwargs.update(overrides)
    return JobSpec.from_legacy_kwargs(**kwargs)


def scenario_dict(**top_level):
    """A minimal valid scenario-mode jobspec dict to mutate per test."""
    data = {
        "version": JOBSPEC_VERSION,
        "mode": "scenario",
        "scenario": {
            "name": "t",
            "protocol": {"kind": "ag", "num_agents": 16},
            "phases": [{"run": {"until": "silence", "max_events": 1000}}],
        },
    }
    data.update(top_level)
    return data


class TestValidation:
    def test_bad_protocol_kind_names_scenario_field(self):
        data = scenario_dict()
        data["scenario"]["protocol"]["kind"] = "nonexistent"
        with pytest.raises(JobSpecError) as err:
            JobSpec.from_dict(data)
        assert err.value.field == "scenario"
        assert "nonexistent" in str(err.value)

    def test_unknown_backend(self):
        with pytest.raises(JobSpecError) as err:
            simulate_spec().__class__.from_dict(
                {**simulate_spec().canonical(), "backend": "cuda"}
            )
        assert err.value.field == "backend"
        assert "cuda" in str(err.value)

    def test_agent_scheduler_in_timeline_rejected(self):
        data = scenario_dict()
        data["scenario"]["timeline"] = [
            {"scheduler": {"kind": "targeted", "targets": 2}}
        ]
        with pytest.raises(JobSpecError) as err:
            JobSpec.from_dict(data)
        assert err.value.field == "scenario"
        assert "agent-identity" in str(err.value)

    def test_unknown_top_level_field(self):
        with pytest.raises(JobSpecError) as err:
            JobSpec.from_dict(scenario_dict(wrkers=4))
        assert err.value.field == "wrkers"

    def test_version_required_and_pinned(self):
        data = scenario_dict()
        del data["version"]
        with pytest.raises(JobSpecError) as err:
            JobSpec.from_dict(data)
        assert err.value.field == "version"
        with pytest.raises(JobSpecError) as err:
            JobSpec.from_dict(scenario_dict(version=JOBSPEC_VERSION + 1))
        assert err.value.field == "version"

    def test_scenario_required(self):
        with pytest.raises(JobSpecError) as err:
            JobSpec.from_dict({"version": JOBSPEC_VERSION})
        assert err.value.field == "scenario"

    def test_ill_typed_scalars_name_their_field(self):
        for field, value in (
            ("seed", "zero"),
            ("seed", True),
            ("repetitions", 0),
            ("trace", 1),
            ("max_events", -5),
        ):
            with pytest.raises(JobSpecError) as err:
                JobSpec.from_dict(scenario_dict(**{field: value}))
            assert err.value.field == field, field

    def test_scenario_mode_rejects_global_max_interactions(self):
        with pytest.raises(JobSpecError) as err:
            JobSpec.from_dict(scenario_dict(max_interactions=10))
        assert err.value.field == "max_interactions"

    def test_simulate_mode_rejects_biased_scheduler(self):
        scenario = Scenario(
            name="t",
            protocol=ProtocolSpec(kind="ag", num_agents=16),
            phases=(RunPhase(until="silence"),),
            scheduler=SchedulerSpec(kind="state_biased", extra_weight=0.5),
        )
        with pytest.raises(JobSpecError) as err:
            JobSpec(scenario=scenario, mode="simulate")
        assert err.value.field == "mode"

    def test_error_message_prefixes_field(self):
        error = JobSpecError("boom", field="seed")
        assert str(error) == "jobspec field 'seed': boom"
        assert error.field == "seed"
        assert JobSpecError("bare").field is None


class TestCanonicalForm:
    def test_round_trip_preserves_digest(self):
        spec = simulate_spec()
        assert JobSpec.from_dict(spec.to_dict()).digest() == spec.digest()
        assert JobSpec.from_dict(spec.canonical()).digest() == spec.digest()

    def test_digest_is_seed_sensitive(self):
        assert simulate_spec(seed=7).digest() != simulate_spec(seed=8).digest()

    def test_canonical_json_is_sorted_and_compact(self):
        text = simulate_spec().canonical_json()
        payload = json.loads(text)
        assert text == json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        )
        assert payload["version"] == JOBSPEC_VERSION

    def test_golden_file_pins_v1(self):
        """Any drift here is a schema change: bump JOBSPEC_VERSION."""
        golden = json.loads(GOLDEN_PATH.read_text())
        simulate = simulate_spec()
        assert simulate.canonical() == golden["simulate"]["canonical"]
        assert simulate.digest() == golden["simulate"]["digest"]
        scenario = JobSpec.from_dict(golden["scenario"]["canonical"])
        assert scenario.canonical() == golden["scenario"]["canonical"]
        assert scenario.digest() == golden["scenario"]["digest"]


class TestLegacyAdapters:
    def test_plain_legacy_call_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            spec = JobSpec.from_legacy_kwargs(
                protocol="tree", n=50, start="k-distant", k=3, seed=1
            )
        assert spec.scenario.start.kind == "k_distant"
        assert spec.scenario.start.k == 3

    def test_ignored_k_warns(self):
        with pytest.warns(DeprecationWarning, match="k=3 conflicts"):
            spec = JobSpec.from_legacy_kwargs(
                protocol="tree", n=50, start="random", k=3
            )
        assert spec.scenario.start.k is None

    def test_sequential_numpy_conflict_warns_and_drops_backend(self):
        with pytest.warns(DeprecationWarning, match="sequential"):
            spec = JobSpec.from_legacy_kwargs(
                protocol="ag", n=20, engine="sequential", backend="numpy"
            )
        assert spec.backend == "python"

    def test_unknown_legacy_kwarg_named(self):
        with pytest.raises(JobSpecError) as err:
            JobSpec.from_legacy_kwargs(protocol="ag", n=20, turbo=True)
        assert err.value.field == "turbo"

    def test_to_run_kwargs_matches_legacy_path_bit_for_bit(self):
        spec = simulate_spec()
        kwargs = spec.to_run_kwargs()
        protocol = kwargs.pop("protocol")
        start = kwargs.pop("configuration")
        rerouted = run_protocol(protocol, start, **kwargs)

        legacy_protocol = AGProtocol(30)
        legacy_start = random_configuration(legacy_protocol, seed=7)
        legacy = run_protocol(legacy_protocol, legacy_start, seed=7)

        assert rerouted.interactions == legacy.interactions
        assert rerouted.events == legacy.events
        assert (
            rerouted.final_configuration.counts_list()
            == legacy.final_configuration.counts_list()
        )

    def test_to_run_kwargs_rejects_scenario_mode(self):
        spec = JobSpec.from_dict(scenario_dict())
        with pytest.raises(JobSpecError) as err:
            spec.to_run_kwargs()
        assert err.value.field == "mode"


class TestFromCampaign:
    def test_catalogued_campaign_resolves_and_digests(self):
        spec = JobSpec.from_campaign("ag_corrupt_recover", scale="smoke",
                                     seed=3)
        assert spec.mode == "scenario"
        assert spec.repetitions >= 1
        again = JobSpec.from_campaign("ag_corrupt_recover", scale="smoke",
                                      seed=3)
        assert spec.digest() == again.digest()
        other = JobSpec.from_campaign("ag_corrupt_recover", scale="smoke",
                                      seed=4)
        assert spec.digest() != other.digest()
