"""repro serve end to end: submit, stream, cache, backpressure, pause.

The server runs on its own event-loop thread per fixture; tests talk to
it through :class:`~repro.serve.client.ServeClient` — plain HTTP plus
the raw-socket WebSocket reader — so every assertion exercises the real
wire format.
"""

import asyncio
import concurrent.futures
import threading
import time

import pytest

from repro.jobspec import JobSpec
from repro.serve import JobControl, ReproServer, ServeClient, execute_jobspec


class ServerHandle:
    """One ReproServer on a dedicated event-loop thread."""

    def __init__(self, **kwargs):
        self.server = ReproServer(**kwargs)
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def main():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.server.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=main, daemon=True)
        self.thread.start()
        assert started.wait(10), "server did not start"
        self.client = ServeClient(port=self.server.port)

    def close(self):
        concurrent.futures.wait(
            [asyncio.run_coroutine_threadsafe(self.server.stop(), self.loop)],
            timeout=10,
        )
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()

    def wait_done(self, job_id, timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            info = self.client.job(job_id)
            if info["status"] in ("done", "failed", "paused"):
                return info
            time.sleep(0.02)
        raise AssertionError(f"job {job_id} did not finish in {timeout}s")


@pytest.fixture
def serve():
    handle = ServerHandle()
    yield handle
    handle.close()


@pytest.fixture
def parked_serve():
    """dispatch=False: jobs queue but never run — backpressure is exact."""
    handle = ServerHandle(dispatch=False, queue_size=1)
    yield handle
    handle.close()


def simulate_dict(seed=7):
    return JobSpec.from_legacy_kwargs(
        protocol="ag", n=30, start="random", seed=seed
    ).to_dict()


def scenario_dict():
    return JobSpec.from_campaign(
        "ag_corrupt_recover", scale="smoke", seed=3
    ).to_dict()


class TestHttpSurface:
    def test_health(self, serve):
        health = serve.client.health()
        assert health["status"] == "ok"
        assert health["queue_size"] == 16

    def test_validation_error_names_field(self, serve):
        bad = simulate_dict()
        bad["backend"] = "cuda"
        status, _, body = serve.client.submit(bad)
        assert status == 400
        assert body["field"] == "backend"
        assert "cuda" in body["error"]

    def test_malformed_json_is_400(self, serve):
        status, _, body = serve.client.request("POST", "/v1/jobs")
        assert status == 400
        assert "JSON" in body["error"]

    def test_unknown_job_is_404(self, serve):
        status, _, body = serve.client.request("GET", "/v1/jobs/job-9999")
        assert status == 404


class TestSubmitStreamCache:
    def test_simulate_job_runs_streams_and_replays_from_cache(self, serve):
        spec = simulate_dict()
        status, _, info = serve.client.submit(spec)
        assert status == 202
        assert info["status"] == "queued" and not info["cached"]

        done = serve.wait_done(info["id"])
        assert done["status"] == "done"
        result = done["result"]
        assert result["stop_reason"] == "silence"
        assert sum(result["counts"]) == 30

        original_frames = serve.client.stream_events(info["id"], raw=True)
        kinds = [frame.split(b'"kind": "')[1].split(b'"')[0]
                 for frame in original_frames]
        assert kinds[0] == b"job_start"
        assert kinds[-1] == b"job_done"
        assert b"job_progress" in kinds

        # Identical resubmission: served from cache, never re-run, and
        # the replayed WebSocket stream is byte-identical.
        status, _, replay = serve.client.submit(spec)
        assert status == 200
        assert replay["cached"] and replay["status"] == "done"
        assert replay["id"] != info["id"]
        assert serve.client.job(replay["id"])["result"] == result
        replay_frames = serve.client.stream_events(replay["id"], raw=True)
        assert replay_frames == original_frames

    def test_different_seed_misses_cache(self, serve):
        first = serve.client.submit(simulate_dict(seed=7))
        serve.wait_done(first[2]["id"])
        status, _, info = serve.client.submit(simulate_dict(seed=8))
        assert status == 202 and not info["cached"]
        serve.wait_done(info["id"])

    def test_scenario_job_streams_logical_records(self, serve):
        status, _, info = serve.client.submit(scenario_dict())
        assert status == 202
        done = serve.wait_done(info["id"])
        assert done["status"] == "done"
        assert done["result"]["recovered_fraction"] == 1.0

        records = serve.client.stream_events(info["id"])
        kinds = {record["kind"] for record in records}
        assert {"job_start", "run_start", "phase_start", "fault",
                "phase_end", "run_end", "job_done"} <= kinds
        runs = {record["run"] for record in records if "run" in record}
        assert runs == set(range(done["result"]["repetitions"]))


class TestBackpressure:
    def test_queue_full_rejects_with_retry_hint(self, parked_serve):
        status, _, info = parked_serve.client.submit(simulate_dict(seed=1))
        assert status == 202

        status, headers, body = parked_serve.client.submit(
            simulate_dict(seed=2)
        )
        assert status == 429
        assert headers["retry-after"] == "1"
        assert body["retry_after"] == 1
        assert "full" in body["error"]

    def test_inflight_duplicate_deduplicates_not_rejects(self, parked_serve):
        status, _, first = parked_serve.client.submit(simulate_dict(seed=1))
        assert status == 202
        status, _, dup = parked_serve.client.submit(simulate_dict(seed=1))
        assert status == 200
        assert dup["deduplicated"] and dup["id"] == first["id"]


class TestPauseResume:
    def test_pause_rejected_unless_running(self, serve):
        status, _, info = serve.client.submit(simulate_dict())
        serve.wait_done(info["id"])
        status, body = serve.client.pause(info["id"])
        assert status == 409
        status, body = serve.client.resume(info["id"])
        assert status == 409

    def test_simulate_park_resume_is_bit_identical(self):
        spec = JobSpec.from_legacy_kwargs(
            protocol="ag", n=30, start="random", seed=7
        )
        reference = execute_jobspec(spec)
        assert reference["status"] == "done"

        control = JobControl()
        control.request_pause()  # parks at the first safe boundary
        paused = execute_jobspec(spec, control=control)
        assert paused["status"] == "paused"
        assert paused["park"]["mode"] == "simulate"

        resumed = execute_jobspec(spec, park=paused["park"])
        assert resumed["status"] == "done"
        assert resumed["result"] == reference["result"]

    def test_scenario_park_resume_is_bit_identical(self):
        spec = JobSpec.from_campaign("ag_corrupt_recover", scale="smoke",
                                     seed=3)
        reference = execute_jobspec(spec)

        control = JobControl()
        control.request_pause()
        paused = execute_jobspec(spec, control=control)
        assert paused["status"] == "paused"
        assert paused["park"]["next_run"] == 0

        resumed = execute_jobspec(spec, park=paused["park"])
        assert resumed["result"] == reference["result"]

    def test_park_mode_mismatch_is_an_error(self):
        from repro.exceptions import ReproError

        spec = JobSpec.from_legacy_kwargs(protocol="ag", n=10)
        with pytest.raises(ReproError, match="park blob"):
            execute_jobspec(spec, park={"mode": "scenario"})
