"""Unit tests for the numpy batch kernel and the backend seam.

The :class:`~repro.core.batch.BatchEngine` is the ``backend="numpy"``
substrate behind :func:`~repro.core.engine.build_engine`.  These tests
pin the routing, the budget semantics (shared with the scalar
engines), the compiled-program cache, and the exactness hooks; the
distributional equivalence itself lives in the property suite
(``tests/property/test_prop_batch_kernel.py``).
"""

import numpy as np
import pytest

from repro import (
    AGProtocol,
    Configuration,
    JumpEngine,
    LineOfTrapsProtocol,
    TreeRankingProtocol,
    random_configuration,
    run_protocol,
)
from repro.core.batch import BatchEngine, _program_for, batch_supported
from repro.exceptions import SimulationError
from repro.obs import Instrumentation


def _ag(n=16):
    protocol = AGProtocol(n)
    return protocol, Configuration.all_in_state(0, n, n)


class TestBackendRouting:
    def test_python_backend_routes_to_jump(self):
        from repro import build_engine

        protocol, start = _ag()
        engine, name = build_engine(protocol, start, seed=1)
        assert name == "jump"
        assert isinstance(engine, JumpEngine)

    def test_numpy_backend_routes_to_batch(self):
        from repro import build_engine

        protocol, start = _ag()
        engine, name = build_engine(protocol, start, seed=1, backend="numpy")
        assert name == "batch"
        assert isinstance(engine, BatchEngine)

    def test_unknown_backend_rejected(self):
        from repro import build_engine

        protocol, start = _ag()
        with pytest.raises(SimulationError, match="backend"):
            build_engine(protocol, start, seed=1, backend="cuda")

    def test_numpy_backend_sequential_engine_stays_scalar(self):
        """Only the jump chain has a batch realisation; asking for the
        sequential reference keeps the sequential reference."""
        from repro import build_engine

        protocol, start = _ag()
        _, name = build_engine(
            protocol, start, seed=1, engine="sequential", backend="numpy"
        )
        assert name == "sequential"

    def test_run_protocol_accepts_backend(self):
        protocol, start = _ag()
        scalar = run_protocol(protocol, start, seed=5)
        batch = run_protocol(protocol, start, seed=5, backend="numpy")
        assert scalar.silent and batch.silent
        assert (
            scalar.final_configuration.counts_list()
            == batch.final_configuration.counts_list()
            == [1] * 16
        )

    def test_supported_protocols(self):
        assert batch_supported(AGProtocol(8))
        assert batch_supported(TreeRankingProtocol(21))
        assert batch_supported(LineOfTrapsProtocol(m=2))


class TestBudgets:
    def test_max_events_exact_stop(self):
        protocol, start = _ag(32)
        engine = BatchEngine(protocol, start, np.random.default_rng(3))
        assert engine.run(max_events=7) is False
        assert engine.events == 7

    def test_max_interactions_clamp_and_resume(self):
        protocol, start = _ag(32)
        engine = BatchEngine(protocol, start, np.random.default_rng(3))
        assert engine.run(max_interactions=25) is False
        assert engine.interactions == 25
        # The budget is a pause, not a terminal state.
        assert engine.run() is True
        assert engine.counts == [1] * 32

    def test_forced_chain_two_agents(self):
        protocol = AGProtocol(2)
        engine = BatchEngine(
            protocol, Configuration([2, 0]), np.random.default_rng(0)
        )
        assert engine.run() is True
        assert engine.interactions == engine.events == 1

    def test_step_drives_to_silence(self):
        protocol, start = _ag(12)
        engine = BatchEngine(protocol, start, np.random.default_rng(9))
        events = 0
        while True:
            event = engine.step()
            if event is None:
                break
            events += 1
            assert event.initiator_before != event.initiator_after or (
                event.responder_before != event.responder_after
            )
        assert engine.is_silent()
        assert engine.events == events
        assert engine.counts == [1] * 12


class TestExactnessHooks:
    def test_instrumentation_does_not_consume_randomness(self):
        """An instrumented run is bit-identical to an uninstrumented
        one at the same seed — counters come from batch arithmetic."""
        protocol = TreeRankingProtocol(21)
        start = random_configuration(protocol, seed=4)
        plain = BatchEngine(protocol, start, np.random.default_rng(8))
        plain.run(max_events=400)
        instr = Instrumentation()
        counted = BatchEngine(
            protocol, start, np.random.default_rng(8), instrumentation=instr
        )
        counted.run(max_events=400)
        assert counted.counts == plain.counts
        assert counted.events == plain.events
        assert counted.interactions == plain.interactions
        assert instr.get("events") == counted.events
        assert instr.get("batch_refills") > 0

    def test_invariants_after_run(self):
        for protocol, start in (
            _ag(24),
            (
                TreeRankingProtocol(21),
                random_configuration(TreeRankingProtocol(21), seed=2),
            ),
            (
                LineOfTrapsProtocol(m=2),
                random_configuration(
                    LineOfTrapsProtocol(m=2), seed=3, include_extras=True
                ),
            ),
        ):
            engine = BatchEngine(protocol, start, np.random.default_rng(6))
            engine.run(max_events=300)
            engine._check_invariants()

    def test_reset_configuration_resyncs(self):
        protocol, start = _ag(20)
        engine = BatchEngine(protocol, start, np.random.default_rng(1))
        engine.run(max_events=30)
        pileup = Configuration.all_in_state(3, 20, 20)
        engine.reset_configuration(pileup)
        assert engine.counts == pileup.counts_list()
        engine._check_invariants()
        assert engine.run() is True
        assert engine.counts == [1] * 20

    def test_reset_configuration_rejects_bad_shapes(self):
        protocol, start = _ag(20)
        engine = BatchEngine(protocol, start, np.random.default_rng(1))
        with pytest.raises(SimulationError):
            engine.reset_configuration([1] * 19)  # wrong state count
        with pytest.raises(SimulationError):
            engine.reset_configuration([21] + [0] * 19)  # wrong population


class TestProgramCache:
    def test_same_shape_shares_compiled_program(self):
        a = _program_for(AGProtocol(16))
        b = _program_for(AGProtocol(16))
        assert a is not None
        assert a is b

    def test_engines_reuse_the_cached_program(self):
        protocol, start = _ag(16)
        first = BatchEngine(protocol, start, np.random.default_rng(0))
        second = BatchEngine(protocol, start, np.random.default_rng(1))
        assert first._program is second._program
