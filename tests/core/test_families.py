"""Unit tests for the productive-pair weight families."""

import numpy as np
import pytest

from repro import (
    AGProtocol,
    LineOfTrapsProtocol,
    RingOfTrapsProtocol,
    SingleTrapProtocol,
    TreeRankingProtocol,
)
from repro.core.families import (
    OrderedProduct,
    SameStatePairs,
    TriangularLine,
    check_family_coverage,
)
from repro.exceptions import SimulationError


def _draws(seq):
    """A rand_below stub that replays a scripted sequence of draws."""
    iterator = iter(seq)

    def rand_below(bound):
        value = next(iterator)
        assert 0 <= value < bound
        return value

    return rand_below


class TestSameStatePairs:
    def test_weight_counts_ordered_pairs(self):
        counts = [3, 1, 2]
        family = SameStatePairs(counts, rule_states=[0, 1, 2])
        # 3·2 + 1·0 + 2·1 = 8 ordered pairs
        assert family.weight == 8

    def test_states_without_rules_ignored(self):
        family = SameStatePairs([5, 5], rule_states=[1])
        assert family.weight == 20

    def test_on_count_change(self):
        counts = [2, 2]
        family = SameStatePairs(counts, rule_states=[0, 1])
        family.on_count_change(0, 2, 4)
        assert family.weight == 4 * 3 + 2 * 1

    def test_sample_returns_same_state_pair(self):
        family = SameStatePairs([0, 3, 0], rule_states=[0, 1, 2])
        si, sj = family.sample(_draws([4]))
        assert (si, sj) == (1, 1)

    def test_sample_proportional_split(self):
        family = SameStatePairs([2, 0, 2], rule_states=[0, 1, 2])
        # weight 2 per state; targets 0,1 → state 0; 2,3 → state 2
        assert family.sample(_draws([1])) == (0, 0)
        assert family.sample(_draws([2])) == (2, 2)

    def test_covers(self):
        family = SameStatePairs([1, 1], rule_states=[0])
        assert family.covers(0, 0)
        assert not family.covers(1, 1)
        assert not family.covers(0, 1)

    def test_on_count_change_returns_weight_delta(self):
        family = SameStatePairs([2, 2], rule_states=[0, 1])
        assert family.on_count_change(0, 2, 4) == 4 * 3 - 2 * 1
        assert family.on_count_change(1, 2, 0) == -2
        assert family.on_count_change(0, 4, 4) == 0

    def test_on_count_change_ruleless_state_returns_zero(self):
        family = SameStatePairs([2, 2], rule_states=[0])
        assert family.on_count_change(1, 2, 7) == 0

    def test_pairs_enumeration(self):
        family = SameStatePairs([1, 1, 1], rule_states=[0, 2])
        assert list(family.pairs()) == [(0, 0), (2, 2)]


class TestOrderedProduct:
    def test_weight_is_product(self):
        counts = [2, 3, 4]
        family = OrderedProduct(counts, initiators=[0, 1], responders=[2])
        assert family.weight == (2 + 3) * 4

    def test_disjointness_enforced(self):
        with pytest.raises(SimulationError):
            OrderedProduct([1, 1], initiators=[0], responders=[0, 1])

    def test_on_count_change_both_sides(self):
        counts = [1, 1]
        family = OrderedProduct(counts, initiators=[0], responders=[1])
        family.on_count_change(0, 1, 5)
        assert family.weight == 5
        family.on_count_change(1, 1, 3)
        assert family.weight == 15

    def test_sample(self):
        counts = [2, 0, 3]
        family = OrderedProduct(counts, initiators=[0, 1], responders=[2])
        si, sj = family.sample(_draws([1, 2]))
        assert (si, sj) == (0, 2)

    def test_covers(self):
        family = OrderedProduct([1, 1, 1], initiators=[0], responders=[2])
        assert family.covers(0, 2)
        assert not family.covers(2, 0)
        assert not family.covers(0, 1)

    def test_on_count_change_returns_weight_delta(self):
        family = OrderedProduct([2, 3, 4], initiators=[0, 1], responders=[2])
        assert family.on_count_change(0, 2, 5) == 3 * 4  # (5+3)·4 − (2+3)·4
        assert family.on_count_change(2, 4, 1) == 8 * (1 - 4)
        assert family.on_count_change(1, 3, 3) == 0

    def test_on_count_change_foreign_state_returns_zero(self):
        family = OrderedProduct([1, 1, 1, 9], initiators=[0], responders=[2])
        assert family.on_count_change(3, 9, 0) == 0

    def test_pairs_enumeration(self):
        family = OrderedProduct([1] * 4, initiators=[0, 1], responders=[3])
        assert sorted(family.pairs()) == [(0, 3), (1, 3)]


class TestTriangularLine:
    def test_weight_formula(self):
        # line states 10, 11, 12 with counts 2, 1, 3
        counts = {10: 2, 11: 1, 12: 3}
        full = [0] * 13
        for s, c in counts.items():
            full[s] = c
        family = TriangularLine(full, line_states=[10, 11, 12])
        # i=0: 2·1 (same) + 2·4 (cross) = 10
        # i=1: 0 + 1·3 = 3 ; i=2: 3·2 = 6  → total 19
        assert family.weight == 19

    def test_distinct_states_required(self):
        with pytest.raises(SimulationError):
            TriangularLine([1, 1], line_states=[0, 0])

    def test_on_count_change_recomputes(self):
        full = [2, 2]
        family = TriangularLine(full, line_states=[0, 1])
        before = family.weight  # 2·1 + 2·2 + 2·1 = 8
        assert before == 8
        family.on_count_change(0, 2, 0)
        assert family.weight == 2  # only (1,1) pairs remain

    def test_ignores_foreign_states(self):
        family = TriangularLine([1, 1, 5], line_states=[0, 1])
        w = family.weight
        family.on_count_change(2, 5, 50)
        assert family.weight == w

    def test_sample_same_and_cross(self):
        full = [2, 1]
        family = TriangularLine(full, line_states=[0, 1])
        # weight: same(0)=2, cross(0→1)=2, same(1)=0 → total 4
        assert family.sample(_draws([0])) == (0, 0)
        assert family.sample(_draws([2])) == (0, 1)
        assert family.sample(_draws([3])) == (0, 1)

    def test_covers_triangular(self):
        family = TriangularLine([0] * 8, line_states=[5, 6, 7])
        assert family.covers(5, 7)
        assert family.covers(6, 6)
        assert not family.covers(7, 5)
        assert not family.covers(5, 4)

    def test_on_count_change_returns_weight_delta(self):
        family = TriangularLine([2, 2], line_states=[0, 1])
        assert family.weight == 8
        assert family.on_count_change(0, 2, 0) == 2 - 8
        assert family.on_count_change(2, 1, 5) == 0  # foreign state

    def test_pairs_enumeration(self):
        family = TriangularLine([0] * 8, line_states=[5, 6, 7])
        assert list(family.pairs()) == [
            (5, 5), (5, 6), (5, 7), (6, 6), (6, 7), (7, 7),
        ]


class TestCoverage:
    @pytest.mark.parametrize(
        "protocol",
        [
            AGProtocol(6),
            RingOfTrapsProtocol(m=3),
            SingleTrapProtocol(inner_size=2, num_agents=5),
            TreeRankingProtocol(7, k=2),
            LineOfTrapsProtocol(m=2),
        ],
        ids=lambda p: p.name,
    )
    def test_families_exactly_cover_delta(self, protocol):
        check_family_coverage(protocol, [2] * protocol.num_states)

    def test_coverage_detects_overlap(self):
        class Broken(AGProtocol):
            def build_families(self, counts):
                states = list(range(self.num_ranks))
                return [
                    SameStatePairs(counts, states),
                    SameStatePairs(counts, states),
                ]

        with pytest.raises(SimulationError):
            check_family_coverage(Broken(4))

    def test_coverage_detects_gap(self):
        class Broken(AGProtocol):
            def build_families(self, counts):
                return [SameStatePairs(counts, [0])]

        with pytest.raises(SimulationError):
            check_family_coverage(Broken(4))


class TestWeightsMatchBruteForce:
    """Family weights must equal a brute-force count of productive pairs."""

    @pytest.mark.parametrize(
        "protocol",
        [
            AGProtocol(6),
            RingOfTrapsProtocol(m=3),
            TreeRankingProtocol(9, k=2),
            LineOfTrapsProtocol(m=2),
        ],
        ids=lambda p: p.name,
    )
    def test_total_weight(self, protocol):
        rng = np.random.default_rng(3)
        counts = rng.integers(0, 4, size=protocol.num_states).tolist()
        families = protocol.build_families(counts)
        total = sum(f.weight for f in families)
        brute = 0
        for si in range(protocol.num_states):
            for sj in range(protocol.num_states):
                if protocol.delta(si, sj) is None:
                    continue
                if si == sj:
                    brute += counts[si] * (counts[si] - 1)
                else:
                    brute += counts[si] * counts[sj]
        assert total == brute
