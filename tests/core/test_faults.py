"""Unit tests for fault injection helpers."""

import pytest

from repro import (
    AGProtocol,
    Configuration,
    RingOfTrapsProtocol,
    corrupt_agents,
    crash_and_replace,
    distance_from_solved,
    run_protocol,
    solved_configuration,
)
from repro.core.faults import adversarial_swap
from repro.exceptions import ConfigurationError


class TestCorruptAgents:
    def test_population_preserved(self):
        config = Configuration([1] * 10)
        corrupted = corrupt_agents(config, 4, seed=1)
        assert corrupted.num_agents == 10
        assert corrupted.num_states == 10

    def test_zero_corruption_is_identity(self):
        config = Configuration([1] * 6)
        assert corrupt_agents(config, 0, seed=1) == config

    def test_target_states_respected(self):
        config = Configuration([1] * 8)
        corrupted = corrupt_agents(config, 8, seed=2, target_states=[0, 1])
        assert corrupted.agents_within([0, 1]) == 8

    def test_too_many_victims_rejected(self):
        with pytest.raises(ConfigurationError):
            corrupt_agents(Configuration([1, 1]), 3, seed=0)

    def test_original_untouched(self):
        config = Configuration([1] * 6)
        corrupt_agents(config, 3, seed=3)
        assert config == Configuration([1] * 6)

    def test_deterministic_given_seed(self):
        config = Configuration([1] * 12)
        assert corrupt_agents(config, 5, seed=9) == corrupt_agents(
            config, 5, seed=9
        )


class TestCrashAndReplace:
    def test_replacement_state_receives_victims(self):
        config = Configuration([1] * 8)
        replaced = crash_and_replace(config, 3, replacement_state=0, seed=1)
        assert replaced.num_agents == 8
        assert replaced.count(0) >= 1

    def test_bad_replacement_state(self):
        with pytest.raises(ConfigurationError):
            crash_and_replace(Configuration([1, 1]), 1,
                              replacement_state=5, seed=0)

    def test_creates_bounded_distance(self):
        protocol = RingOfTrapsProtocol(m=4)
        config = solved_configuration(protocol)
        replaced = crash_and_replace(config, 5, replacement_state=0, seed=7)
        assert distance_from_solved(protocol, replaced) <= 5


class TestAdversarialSwap:
    def test_swap(self):
        swapped = adversarial_swap(Configuration([3, 0, 1]), 0, 1)
        assert swapped.as_tuple() == (0, 3, 1)

    def test_swap_is_involution(self):
        config = Configuration([2, 5, 0])
        assert adversarial_swap(adversarial_swap(config, 0, 2), 0, 2) == config


class TestRecoveryAfterFaults:
    """The self-stabilisation contract: corrupt, re-run, recover."""

    def test_ag_recovers_from_corruption(self):
        protocol = AGProtocol(10)
        solved = solved_configuration(protocol)
        corrupted = corrupt_agents(solved, 4, seed=11)
        result = run_protocol(protocol, corrupted, seed=11)
        assert result.silent
        assert protocol.is_ranked(result.final_configuration)

    def test_ring_recovers_from_crash(self):
        protocol = RingOfTrapsProtocol(m=4)
        corrupted = crash_and_replace(
            solved_configuration(protocol), 6, replacement_state=0, seed=13
        )
        result = run_protocol(protocol, corrupted, seed=13)
        assert result.silent
        assert protocol.is_ranked(result.final_configuration)
