"""Unit tests for fault injection helpers."""

import numpy as np
import pytest

from repro import (
    AGProtocol,
    Configuration,
    RingOfTrapsProtocol,
    arrive_agents,
    corrupt_agents,
    crash_and_replace,
    depart_agents,
    distance_from_solved,
    run_protocol,
    solved_configuration,
)
from repro.core.faults import adversarial_swap
from repro.exceptions import ConfigurationError


class TestCorruptAgents:
    def test_population_preserved(self):
        config = Configuration([1] * 10)
        corrupted = corrupt_agents(config, 4, seed=1)
        assert corrupted.num_agents == 10
        assert corrupted.num_states == 10

    def test_zero_corruption_is_identity(self):
        config = Configuration([1] * 6)
        assert corrupt_agents(config, 0, seed=1) == config

    def test_target_states_respected(self):
        config = Configuration([1] * 8)
        corrupted = corrupt_agents(config, 8, seed=2, target_states=[0, 1])
        assert corrupted.agents_within([0, 1]) == 8

    def test_too_many_victims_rejected(self):
        with pytest.raises(ConfigurationError):
            corrupt_agents(Configuration([1, 1]), 3, seed=0)

    def test_original_untouched(self):
        config = Configuration([1] * 6)
        corrupt_agents(config, 3, seed=3)
        assert config == Configuration([1] * 6)

    def test_deterministic_given_seed(self):
        config = Configuration([1] * 12)
        assert corrupt_agents(config, 5, seed=9) == corrupt_agents(
            config, 5, seed=9
        )


class TestCrashAndReplace:
    def test_replacement_state_receives_victims(self):
        config = Configuration([1] * 8)
        replaced = crash_and_replace(config, 3, replacement_state=0, seed=1)
        assert replaced.num_agents == 8
        assert replaced.count(0) >= 1

    def test_bad_replacement_state(self):
        with pytest.raises(ConfigurationError):
            crash_and_replace(Configuration([1, 1]), 1,
                              replacement_state=5, seed=0)

    def test_creates_bounded_distance(self):
        protocol = RingOfTrapsProtocol(m=4)
        config = solved_configuration(protocol)
        replaced = crash_and_replace(config, 5, replacement_state=0, seed=7)
        assert distance_from_solved(protocol, replaced) <= 5


class TestVectorisedVictimDraw:
    """The hypergeometric draw must behave like per-agent sampling."""

    def test_all_agents_corrupted_empties_no_state_below_zero(self):
        config = Configuration([5, 3, 2])
        corrupted = corrupt_agents(config, 10, seed=4, target_states=[1])
        assert corrupted.as_tuple() == (0, 10, 0)

    def test_skewed_counts_weight_victim_selection(self):
        # With 90% of agents in state 0, most victims come from state 0.
        config = Configuration([90, 10])
        replaced = crash_and_replace(config, 50, replacement_state=1, seed=0)
        assert replaced.count(0) >= 30  # ≥ 40 of 50 victims from state 0 whp
        assert replaced.num_agents == 100

    def test_generator_seed_and_int_seed_agree(self):
        config = Configuration([4] * 8)
        from_int = corrupt_agents(config, 6, seed=123)
        from_gen = corrupt_agents(config, 6, seed=np.random.default_rng(123))
        assert from_int == from_gen

    def test_negative_victims_rejected(self):
        with pytest.raises(ConfigurationError):
            corrupt_agents(Configuration([2, 2]), -1, seed=0)


class TestChurn:
    def test_depart_shrinks_population(self):
        config = Configuration([3, 3, 3])
        smaller = depart_agents(config, 4, seed=1)
        assert smaller.num_agents == 5
        assert smaller.num_states == 3
        assert config.num_agents == 9  # input untouched

    def test_depart_everyone(self):
        empty = depart_agents(Configuration([2, 1]), 3, seed=0)
        assert empty.num_agents == 0

    def test_depart_too_many_rejected(self):
        with pytest.raises(ConfigurationError):
            depart_agents(Configuration([1, 1]), 3, seed=0)

    def test_arrive_grows_population_in_given_states(self):
        config = Configuration([1, 1, 0])
        bigger = arrive_agents(config, 5, arrival_states=2, seed=1)
        assert bigger.num_agents == 7
        assert bigger.count(2) == 5

    def test_arrive_spreads_over_state_set(self):
        config = Configuration([0, 0, 0, 0])
        grown = arrive_agents(config, 40, arrival_states=[1, 2], seed=2)
        assert grown.count(0) == 0 and grown.count(3) == 0
        assert grown.count(1) > 0 and grown.count(2) > 0

    def test_arrive_bad_state_rejected(self):
        with pytest.raises(ConfigurationError):
            arrive_agents(Configuration([1, 1]), 1, arrival_states=5, seed=0)
        with pytest.raises(ConfigurationError):
            arrive_agents(Configuration([1, 1]), 1, arrival_states=[], seed=0)

    def test_churn_round_trip_is_deterministic(self):
        config = Configuration([2] * 10)
        a = arrive_agents(depart_agents(config, 5, seed=7), 5, 0, seed=8)
        b = arrive_agents(depart_agents(config, 5, seed=7), 5, 0, seed=8)
        assert a == b


class TestAdversarialSwap:
    def test_swap(self):
        swapped = adversarial_swap(Configuration([3, 0, 1]), 0, 1)
        assert swapped.as_tuple() == (0, 3, 1)

    def test_swap_is_involution(self):
        config = Configuration([2, 5, 0])
        assert adversarial_swap(adversarial_swap(config, 0, 2), 0, 2) == config


class TestRecoveryAfterFaults:
    """The self-stabilisation contract: corrupt, re-run, recover."""

    def test_ag_recovers_from_corruption(self):
        protocol = AGProtocol(10)
        solved = solved_configuration(protocol)
        corrupted = corrupt_agents(solved, 4, seed=11)
        result = run_protocol(protocol, corrupted, seed=11)
        assert result.silent
        assert protocol.is_ranked(result.final_configuration)

    def test_ring_recovers_from_crash(self):
        protocol = RingOfTrapsProtocol(m=4)
        corrupted = crash_and_replace(
            solved_configuration(protocol), 6, replacement_state=0, seed=13
        )
        result = run_protocol(protocol, corrupted, seed=13)
        assert result.silent
        assert protocol.is_ranked(result.final_configuration)
