"""Unit tests for the Fenwick tree weighted sampler."""

import pytest

from repro.core.fenwick import FenwickTree, fill_tree


class TestFillTree:
    def test_fill_matches_from_values(self):
        values = [3, 0, 7, 1, 0, 2]
        tree = [99] * (len(values) + 1)  # stale garbage must be cleared
        total = fill_tree(tree, len(values), values)
        assert total == sum(values)
        assert tree == FenwickTree.from_values(values)._tree

    def test_padded_fill_propagates_to_top_node(self):
        # Padding slots count as zero, and the power-of-two top node
        # must carry the full total (the fused index relies on it).
        values = [5, 1, 2]
        size = 4
        tree = [0] * (size + 1)
        total = fill_tree(tree, size, values)
        assert total == 8
        assert tree[size] == 8

    def test_refill_in_place_preserves_aliases(self):
        tree = [0] * 5
        alias = tree
        fill_tree(tree, 4, [1, 2, 3, 4])
        fill_tree(tree, 4, [4, 3, 2, 1])
        assert alias is tree
        assert tree[4] == 10


class TestConstruction:
    def test_empty_tree(self):
        tree = FenwickTree(0)
        assert tree.total == 0
        assert len(tree) == 0

    def test_zero_initialised(self):
        tree = FenwickTree(5)
        assert tree.total == 0
        assert all(tree.get(i) == 0 for i in range(5))

    def test_from_values_matches_sets(self):
        values = [3, 0, 7, 1, 0, 2]
        bulk = FenwickTree.from_values(values)
        one_by_one = FenwickTree(len(values))
        for i, v in enumerate(values):
            one_by_one.set(i, v)
        assert bulk.total == one_by_one.total == sum(values)
        for i in range(len(values)):
            assert bulk.prefix_sum(i) == one_by_one.prefix_sum(i)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            FenwickTree(-1)


class TestUpdates:
    def test_set_and_get(self):
        tree = FenwickTree(4)
        tree.set(2, 9)
        assert tree.get(2) == 9
        assert tree.total == 9

    def test_add(self):
        tree = FenwickTree(4)
        tree.set(1, 5)
        tree.add(1, 3)
        assert tree.get(1) == 8
        tree.add(1, -8)
        assert tree.get(1) == 0

    def test_negative_weight_rejected(self):
        tree = FenwickTree(3)
        with pytest.raises(ValueError):
            tree.set(0, -1)
        tree.set(0, 2)
        with pytest.raises(ValueError):
            tree.add(0, -3)

    def test_noop_set_keeps_total(self):
        tree = FenwickTree.from_values([1, 2, 3])
        tree.set(1, 2)
        assert tree.total == 6

    def test_total_tracks_many_updates(self):
        tree = FenwickTree(10)
        expected = [0] * 10
        import random

        rnd = random.Random(7)
        for _ in range(200):
            i = rnd.randrange(10)
            v = rnd.randrange(50)
            tree.set(i, v)
            expected[i] = v
            assert tree.total == sum(expected)


class TestPrefixSums:
    def test_prefix_sums_exhaustive(self):
        values = [4, 1, 0, 3, 9, 2, 2]
        tree = FenwickTree.from_values(values)
        for i in range(len(values) + 1):
            assert tree.prefix_sum(i) == sum(values[:i])


class TestFind:
    def test_find_covers_every_slot(self):
        values = [2, 0, 3, 1]
        tree = FenwickTree.from_values(values)
        # targets 0,1 → slot 0; 2,3,4 → slot 2; 5 → slot 3
        expected = [0, 0, 2, 2, 2, 3]
        assert [tree.find(t) for t in range(6)] == expected

    def test_find_skips_zero_slots(self):
        tree = FenwickTree.from_values([0, 0, 5, 0])
        for t in range(5):
            assert tree.find(t) == 2

    def test_find_out_of_range(self):
        tree = FenwickTree.from_values([1, 1])
        with pytest.raises(ValueError):
            tree.find(2)
        with pytest.raises(ValueError):
            tree.find(-1)

    def test_find_on_empty_total(self):
        tree = FenwickTree(3)
        with pytest.raises(ValueError):
            tree.find(0)

    def test_find_single_slot(self):
        tree = FenwickTree.from_values([7])
        assert all(tree.find(t) == 0 for t in range(7))

    def test_find_after_updates(self):
        tree = FenwickTree.from_values([1, 1, 1])
        tree.set(1, 0)
        assert tree.find(0) == 0
        assert tree.find(1) == 2

    def test_find_non_power_of_two_size(self):
        values = [1] * 13
        tree = FenwickTree.from_values(values)
        for t in range(13):
            assert tree.find(t) == t

    def test_repr_is_informative(self):
        tree = FenwickTree.from_values([1, 2])
        assert "total=3" in repr(tree)
