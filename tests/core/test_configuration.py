"""Unit tests for the Configuration multiset."""

import numpy as np
import pytest

from repro import Configuration, ConfigurationError


class TestConstructors:
    def test_from_counts(self):
        config = Configuration([1, 0, 2])
        assert config.num_states == 3
        assert config.num_agents == 3

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            Configuration([1, -1])

    def test_from_agents(self):
        config = Configuration.from_agents([0, 2, 2, 1], num_states=4)
        assert config.as_tuple() == (1, 1, 2, 0)

    def test_from_agents_out_of_range(self):
        with pytest.raises(ConfigurationError):
            Configuration.from_agents([5], num_states=3)
        with pytest.raises(ConfigurationError):
            Configuration.from_agents([-1], num_states=3)

    def test_all_in_state(self):
        config = Configuration.all_in_state(1, num_agents=5, num_states=3)
        assert config.as_tuple() == (0, 5, 0)

    def test_all_in_state_bad_state(self):
        with pytest.raises(ConfigurationError):
            Configuration.all_in_state(3, num_agents=5, num_states=3)

    def test_one_per_state(self):
        config = Configuration.one_per_state(4)
        assert config.as_tuple() == (1, 1, 1, 1)


class TestQueries:
    @pytest.fixture
    def config(self):
        return Configuration([0, 3, 1, 0, 2])

    def test_count(self, config):
        assert config.count(1) == 3
        assert config.count(0) == 0

    def test_occupied_unoccupied(self, config):
        assert config.occupied_states() == [1, 2, 4]
        assert config.unoccupied_states() == [0, 3]

    def test_overloaded(self, config):
        assert config.overloaded_states() == [1, 4]

    def test_support_size(self, config):
        assert config.support_size() == 3

    def test_missing_within(self, config):
        assert config.missing_within([0, 1, 3]) == [0, 3]

    def test_restricted_to(self, config):
        assert config.restricted_to([1, 3, 4]) == {1: 3, 4: 2}

    def test_agents_within(self, config):
        assert config.agents_within(range(2)) == 3
        assert config.agents_within(range(5)) == config.num_agents

    def test_is_ranked_true(self):
        assert Configuration([1, 1, 1, 0]).is_ranked(3)

    def test_is_ranked_false_duplicate(self):
        assert not Configuration([2, 0, 1, 0]).is_ranked(3)

    def test_is_ranked_false_extra_occupied(self):
        assert not Configuration([1, 1, 0, 1]).is_ranked(3)


class TestUpdatesAndDunder:
    def test_with_move(self):
        config = Configuration([2, 0])
        moved = config.with_move(0, 1)
        assert moved.as_tuple() == (1, 1)
        # original untouched (value semantics)
        assert config.as_tuple() == (2, 0)

    def test_with_move_multiple(self):
        config = Configuration([3, 0]).with_move(0, 1, agents=2)
        assert config.as_tuple() == (1, 2)

    def test_with_move_underflow(self):
        with pytest.raises(ConfigurationError):
            Configuration([1, 0]).with_move(0, 1, agents=2)

    def test_equality_and_hash(self):
        a = Configuration([1, 2])
        b = Configuration([1, 2])
        c = Configuration([2, 1])
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_iteration_and_len(self):
        config = Configuration([1, 0, 2])
        assert list(config) == [1, 0, 2]
        assert len(config) == 3

    def test_counts_list_is_a_copy(self):
        config = Configuration([1, 1])
        counts = config.counts_list()
        counts[0] = 99
        assert config.count(0) == 1

    def test_counts_array_dtype(self):
        arr = Configuration([1, 2]).counts_array()
        assert arr.dtype == np.int64
        assert arr.tolist() == [1, 2]

    def test_copy_independent(self):
        a = Configuration([1, 2])
        assert a.copy() == a and a.copy() is not a

    def test_repr_small_and_large(self):
        small = Configuration([1, 0])
        assert "occupied" in repr(small)
        large = Configuration([1] * 40)
        assert "40 occupied" in repr(large)
