"""Unit tests for the protocol ABCs and the exception hierarchy."""

import pytest

from repro import (
    AGProtocol,
    Configuration,
    ConfigurationError,
    ExperimentError,
    ProtocolError,
    ReproError,
    SimulationError,
    SimulationLimitReached,
    TreeRankingProtocol,
)
from repro.core.protocol import PopulationProtocol


class TestPopulationProtocolBase:
    def test_rejects_tiny_population(self):
        with pytest.raises(ProtocolError):
            AGProtocol(0)

    def test_rejects_single_agent(self):
        # pairwise interactions need two agents
        with pytest.raises(ProtocolError):
            AGProtocol(1)

    def test_default_same_state_rule_scan(self):
        class OneRule(PopulationProtocol):
            def __init__(self):
                super().__init__(num_states=4, num_agents=4)

            def delta(self, initiator, responder):
                if initiator == responder == 2:
                    return 2, 3
                return None

        protocol = OneRule()
        assert protocol.same_state_rule_states() == [2]

    def test_default_is_silent_uses_families(self):
        class OneRule(PopulationProtocol):
            def __init__(self):
                super().__init__(num_states=3, num_agents=3)

            def delta(self, initiator, responder):
                if initiator == responder == 0:
                    return 0, 1
                return None

        protocol = OneRule()
        assert protocol.is_silent(Configuration([1, 1, 1]))
        assert not protocol.is_silent(Configuration([2, 1, 0]))
        # duplicates on a rule-less state are still silent
        assert protocol.is_silent(Configuration([0, 3, 0]))

    def test_default_state_label(self):
        assert TreeRankingProtocol(5, k=1).state_label(0) == "rank0"

    def test_repr(self):
        assert "num_agents=5" in repr(AGProtocol(5))


class TestRankingProtocolBase:
    def test_rank_extra_partition(self):
        protocol = TreeRankingProtocol(10, k=3)
        assert list(protocol.rank_states) == list(range(10))
        assert list(protocol.extra_states) == list(range(10, 16))
        assert protocol.num_ranks == 10
        assert protocol.num_extra_states == 6

    def test_negative_extras_rejected(self):
        class Bad(TreeRankingProtocol):
            pass

        with pytest.raises(ProtocolError):
            TreeRankingProtocol(10, k=-1)

    def test_leader_state_is_zero(self):
        assert AGProtocol(5).leader_state == 0

    def test_solved_configuration(self):
        protocol = TreeRankingProtocol(6, k=2)
        solved = protocol.solved_configuration()
        assert solved.num_agents == 6
        assert protocol.is_ranked(solved)

    def test_validate_configuration(self):
        protocol = AGProtocol(5)
        with pytest.raises(ConfigurationError):
            protocol.validate_configuration(Configuration([1] * 6))


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            ProtocolError,
            SimulationError,
            SimulationLimitReached,
            ExperimentError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_repro_error_is_not_builtin(self):
        assert not issubclass(ReproError, (ValueError, RuntimeError))
