"""The numpy-free degradation contract, exercised in a subprocess.

numpy is an optional extra (``pip install 'repro[numpy]'``).  Without
it the package must still import, the sequential reference engine must
still run protocols to silence, and ``backend="numpy"`` must fail with
an actionable :class:`ImportError` naming the extra — not a bare
``ModuleNotFoundError`` from deep inside an engine.

The test process itself has numpy (the whole dev environment does), so
each scenario runs in a fresh subprocess whose ``sys.meta_path`` blocks
the numpy import before ``repro`` loads — the same observable state as
a machine where the extra was never installed.  CI additionally runs
the real thing (a job leg that uninstalls numpy); this file keeps the
contract testable locally and under plain pytest.
"""

import subprocess
import sys
import textwrap

import pytest

_BLOCKER = """
import sys

class _BlockNumpy:
    def find_module(self, name, path=None):  # legacy hook, pre-3.12
        return None

    def find_spec(self, name, path=None, target=None):
        if name == "numpy" or name.startswith("numpy."):
            raise ImportError("numpy blocked for this test")
        return None

sys.meta_path.insert(0, _BlockNumpy())
for name in [m for m in sys.modules if m == "numpy" or m.startswith("numpy.")]:
    del sys.modules[name]
"""


def _run(body: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-c", _BLOCKER + textwrap.dedent(body)],
        capture_output=True,
        text=True,
        timeout=120,
    )


class TestNumpyFreeFallback:
    def test_sequential_fallback_runs_to_silence(self):
        proc = _run(
            """
            from repro import AGProtocol, Configuration, build_engine
            from repro._deps import HAVE_NUMPY

            assert not HAVE_NUMPY, "blocker failed; numpy imported"
            protocol = AGProtocol(10)
            start = Configuration.all_in_state(0, 10, 10)
            engine, name = build_engine(protocol, start, seed=3)
            assert name == "sequential", name
            assert engine.run() is True
            assert engine.counts == [1] * 10, engine.counts
            print("FALLBACK-OK")
            """
        )
        assert proc.returncode == 0, proc.stderr
        assert "FALLBACK-OK" in proc.stdout

    def test_run_protocol_degrades_cleanly(self):
        proc = _run(
            """
            from repro import AGProtocol, Configuration, run_protocol

            protocol = AGProtocol(8)
            start = Configuration.all_in_state(0, 8, 8)
            result = run_protocol(protocol, start, seed=11)
            assert result.silent
            assert result.final_configuration.counts_list() == [1] * 8
            print("RUN-OK")
            """
        )
        assert proc.returncode == 0, proc.stderr
        assert "RUN-OK" in proc.stdout

    def test_numpy_backend_raises_actionable_error(self):
        proc = _run(
            """
            from repro import AGProtocol, Configuration, build_engine

            protocol = AGProtocol(10)
            start = Configuration.all_in_state(0, 10, 10)
            try:
                build_engine(protocol, start, seed=3, backend="numpy")
            except ImportError as error:
                message = str(error)
                assert "repro[numpy]" in message, message
                assert "backend" in message, message
                print("ERROR-OK")
            else:
                raise AssertionError("backend='numpy' did not raise")
            """
        )
        assert proc.returncode == 0, proc.stderr
        assert "ERROR-OK" in proc.stdout

    def test_deps_proxy_names_the_extra_on_attribute_access(self):
        proc = _run(
            """
            from repro._deps import np, HAVE_NUMPY

            assert not HAVE_NUMPY
            try:
                np.random
            except ImportError as error:
                assert "repro[numpy]" in str(error), error
                print("PROXY-OK")
            else:
                raise AssertionError("proxy did not raise")
            """
        )
        assert proc.returncode == 0, proc.stderr
        assert "PROXY-OK" in proc.stdout


@pytest.mark.slow
class TestNumpyFreeScenario:
    def test_scenario_uniform_phase_runs(self):
        """The scenario layer stays usable without numpy as long as the
        scenario needs neither biased schedulers nor the analysis
        stack (the pure-Python generator drives the sequential
        engine)."""
        proc = _run(
            """
            from repro import AGProtocol, Configuration, build_engine

            protocol = AGProtocol(12)
            start = Configuration.all_in_state(0, 12, 12)
            engine, _ = build_engine(protocol, start, seed=7)
            engine.run(max_events=50)
            engine.reset_configuration(
                Configuration.all_in_state(2, 12, 12)
            )
            assert engine.run() is True
            print("SCENARIO-OK")
            """
        )
        assert proc.returncode == 0, proc.stderr
        assert "SCENARIO-OK" in proc.stdout
