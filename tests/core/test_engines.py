"""Unit tests for the jump and sequential engines and the runner API."""

import numpy as np
import pytest

from repro import (
    AGProtocol,
    Configuration,
    JumpEngine,
    MetricRecorder,
    RingOfTrapsProtocol,
    SequentialEngine,
    TrajectoryRecorder,
    TreeRankingProtocol,
    run_protocol,
    solved_configuration,
)
from repro.exceptions import (
    ConfigurationError,
    SimulationError,
    SimulationLimitReached,
)


def _engine(protocol, config, seed=0, cls=JumpEngine):
    return cls(protocol, config, np.random.default_rng(seed))


class TestJumpEngineBasics:
    def test_solved_configuration_is_silent(self):
        protocol = AGProtocol(6)
        engine = _engine(protocol, solved_configuration(protocol))
        assert engine.is_silent()
        assert engine.step() is None
        assert engine.run() is True
        assert engine.interactions == 0

    def test_step_applies_exactly_one_transition(self):
        protocol = AGProtocol(4)
        engine = _engine(protocol, Configuration([4, 0, 0, 0]))
        event = engine.step()
        assert event is not None
        assert engine.counts == [3, 1, 0, 0]
        assert engine.events == 1
        assert event.interactions == engine.interactions >= 1

    def test_agent_count_conserved(self):
        protocol = TreeRankingProtocol(9, k=2)
        config = Configuration.all_in_state(8, 9, protocol.num_states)
        engine = _engine(protocol, config)
        engine.run()
        assert sum(engine.counts) == 9

    def test_run_reaches_correct_ranking(self):
        protocol = AGProtocol(8)
        engine = _engine(protocol, Configuration.all_in_state(3, 8, 8))
        assert engine.run() is True
        assert engine.counts == [1] * 8

    def test_interactions_at_least_events(self):
        protocol = AGProtocol(16)
        engine = _engine(protocol, Configuration.all_in_state(0, 16, 16))
        engine.run()
        assert engine.interactions >= engine.events > 0

    def test_validates_configuration_size(self):
        protocol = AGProtocol(5)
        with pytest.raises(ConfigurationError):
            _engine(protocol, Configuration([1] * 4))

    def test_validates_agent_count(self):
        protocol = AGProtocol(5)
        with pytest.raises(ConfigurationError):
            _engine(protocol, Configuration([2, 1, 1, 1, 1]))

    def test_rand_below_range(self):
        protocol = AGProtocol(4)
        engine = _engine(protocol, Configuration([1] * 4))
        draws = [engine.rand_below(7) for _ in range(1000)]
        assert min(draws) >= 0 and max(draws) < 7
        assert len(set(draws)) == 7  # all values reachable

    def test_max_interactions_budget(self):
        protocol = AGProtocol(32)
        engine = _engine(protocol, Configuration.all_in_state(0, 32, 32))
        silent = engine.run(max_interactions=50)
        assert silent is False
        assert engine.interactions == 50

    def test_null_pair_from_families_raises(self):
        class Broken(AGProtocol):
            def delta(self, initiator, responder):
                return None  # families still claim productive pairs

        engine = _engine(Broken(4), Configuration([4, 0, 0, 0]))
        with pytest.raises(SimulationError):
            engine.step()


class TestSequentialEngineBasics:
    def test_solved_is_silent(self):
        protocol = AGProtocol(5)
        engine = _engine(
            protocol, solved_configuration(protocol), cls=SequentialEngine
        )
        assert engine.run() is True
        assert engine.interactions == 0

    def test_agent_array_matches_counts(self):
        protocol = RingOfTrapsProtocol(m=3)
        config = Configuration.all_in_state(0, 12, 12)
        engine = _engine(protocol, config, cls=SequentialEngine)
        engine.run(max_interactions=500)
        counts = [0] * protocol.num_states
        for state in engine.agent_states:
            counts[state] += 1
        assert counts == engine.counts

    def test_reaches_correct_ranking(self):
        protocol = AGProtocol(6)
        engine = _engine(
            protocol, Configuration.all_in_state(0, 6, 6), cls=SequentialEngine
        )
        assert engine.run() is True
        assert engine.counts == [1] * 6

    def test_every_interaction_counted(self):
        protocol = AGProtocol(6)
        engine = _engine(
            protocol, Configuration.all_in_state(0, 6, 6), cls=SequentialEngine
        )
        engine.run(max_interactions=100)
        # sequential counts nulls too, so interactions ≥ events always
        assert engine.interactions >= engine.events

    def test_step_returns_none_for_null(self):
        protocol = AGProtocol(4)
        # two distinct singleton states → every interaction is null
        engine = _engine(
            protocol, Configuration([1, 1, 1, 1]), cls=SequentialEngine
        )
        assert engine.step() is None
        assert engine.interactions == 1


class TestRunProtocol:
    def test_result_fields(self):
        protocol = AGProtocol(8)
        config = Configuration.all_in_state(0, 8, 8)
        result = run_protocol(protocol, config, seed=1)
        assert result.silent is True
        assert result.protocol_name == "AG"
        assert result.engine_name == "jump"
        assert result.num_agents == 8
        assert result.parallel_time == result.interactions / 8
        assert result.final_configuration.is_ranked(8)
        assert result.wall_time_s >= 0
        assert result.seed == 1

    def test_deterministic_given_seed(self):
        protocol = AGProtocol(10)
        config = Configuration.all_in_state(0, 10, 10)
        a = run_protocol(protocol, config, seed=42)
        b = run_protocol(protocol, config, seed=42)
        assert a.interactions == b.interactions
        assert a.events == b.events

    def test_different_seeds_differ(self):
        protocol = AGProtocol(10)
        config = Configuration.all_in_state(0, 10, 10)
        runs = {run_protocol(protocol, config, seed=s).interactions
                for s in range(5)}
        assert len(runs) > 1

    def test_unknown_engine_rejected(self):
        protocol = AGProtocol(4)
        with pytest.raises(SimulationError):
            run_protocol(protocol, solved_configuration(protocol),
                         engine="warp")

    def test_require_silence_raises_on_budget(self):
        protocol = AGProtocol(32)
        config = Configuration.all_in_state(0, 32, 32)
        with pytest.raises(SimulationLimitReached):
            run_protocol(protocol, config, seed=0, max_interactions=10,
                         require_silence=True)

    def test_budget_returns_non_silent(self):
        protocol = AGProtocol(32)
        config = Configuration.all_in_state(0, 32, 32)
        result = run_protocol(protocol, config, seed=0, max_interactions=10)
        assert result.silent is False
        assert result.interactions == 10

    def test_sequential_engine_selectable(self):
        protocol = AGProtocol(6)
        config = Configuration.all_in_state(0, 6, 6)
        result = run_protocol(protocol, config, seed=3, engine="sequential")
        assert result.silent and result.engine_name == "sequential"

    def test_repr(self):
        protocol = AGProtocol(6)
        result = run_protocol(
            protocol, Configuration.all_in_state(0, 6, 6), seed=0
        )
        assert "silent" in repr(result)


class TestRecorders:
    def test_trajectory_recorder_sees_every_event(self):
        protocol = AGProtocol(8)
        config = Configuration.all_in_state(0, 8, 8)
        recorder = TrajectoryRecorder()
        result = run_protocol(protocol, config, seed=5, recorder=recorder)
        assert len(recorder.events) == result.events
        # interaction stamps strictly increase
        stamps = [e.interactions for e in recorder.events]
        assert all(a < b for a, b in zip(stamps, stamps[1:]))

    def test_metric_recorder_tracks_duplicates(self):
        protocol = AGProtocol(8)
        config = Configuration.all_in_state(0, 8, 8)
        recorder = MetricRecorder(
            lambda counts: sum(c - 1 for c in counts if c > 1)
        )
        run_protocol(protocol, config, seed=5, recorder=recorder)
        assert recorder.values[0] == 7  # all 8 agents piled on one state
        assert recorder.values[-1] == 0  # perfectly ranked
        assert len(recorder.values) == len(recorder.interactions)

    def test_recorder_with_sequential_engine(self):
        protocol = AGProtocol(6)
        config = Configuration.all_in_state(0, 6, 6)
        recorder = TrajectoryRecorder()
        result = run_protocol(
            protocol, config, seed=5, engine="sequential", recorder=recorder
        )
        assert len(recorder.events) == result.events


class TestCompiledTransitionTables:
    def test_opt_out_falls_back_to_dynamic_delta(self):
        class DynamicAG(AGProtocol):
            compile_transitions = False

        compiled = _engine(AGProtocol(10), Configuration.all_in_state(0, 10, 10))
        dynamic = _engine(DynamicAG(10), Configuration.all_in_state(0, 10, 10))
        assert compiled._ss_table is not None
        assert dynamic._ss_table is None and dynamic._pair_table is None
        # The table is a pure cache: step() consumes the identical RNG
        # stream either way, so same-seed trajectories match exactly.
        while True:
            a, b = compiled.step(), dynamic.step()
            assert a == b
            if a is None:
                break
        assert compiled.counts == dynamic.counts == [1] * 10

    def test_opt_out_run_still_stabilises(self):
        class DynamicAG(AGProtocol):
            compile_transitions = False

        engine = _engine(DynamicAG(12), Configuration.all_in_state(0, 12, 12))
        assert engine.run() is True
        assert engine.counts == [1] * 12

    def test_tree_protocol_uses_lazy_pair_table(self):
        protocol = TreeRankingProtocol(9, k=2)
        engine = _engine(protocol, Configuration.all_in_state(8, 9, protocol.num_states))
        assert engine._ss_table is None  # cross-state families
        assert engine._pair_table == {}
        engine.step()
        assert len(engine._pair_table) >= 1  # filled on demand

    def test_broken_coverage_still_raises_lazily(self):
        """A protocol whose delta contradicts its families must raise at
        sampling time (not construction), with tables enabled."""

        class Broken(AGProtocol):
            def delta(self, initiator, responder):
                return None

        engine = _engine(Broken(4), Configuration([4, 0, 0, 0]))
        assert engine._ss_table is None  # compilation detected the mismatch
        with pytest.raises(SimulationError):
            engine.run()


class TestDebugMode:
    def test_debug_run_checks_weight_sync(self):
        engine = JumpEngine(
            AGProtocol(16),
            Configuration.all_in_state(0, 16, 16),
            np.random.default_rng(0),
            debug=True,
        )
        assert engine.run() is True

    def test_debug_detects_desync(self):
        engine = JumpEngine(
            AGProtocol(16),
            Configuration.all_in_state(0, 16, 16),
            np.random.default_rng(0),
            debug=True,
        )
        engine._weight += 1  # corrupt the cache
        with pytest.raises(AssertionError):
            engine.step()


class TestExactSampling:
    def test_rand_below_huge_bound_in_range(self):
        engine = _engine(AGProtocol(4), Configuration([1] * 4))
        bound = (1 << 60) + 3
        draws = [engine.rand_below(bound) for _ in range(200)]
        assert all(0 <= d < bound for d in draws)
        # Float-multiply sampling would collapse to multiples of 128 up
        # here; exact sampling must produce odd values too.
        assert any(d % 2 == 1 for d in draws)

    def test_rand_below_small_bound_uniform(self):
        engine = _engine(AGProtocol(4), Configuration([1] * 4))
        draws = [engine.rand_below(3) for _ in range(3000)]
        for value in range(3):
            share = draws.count(value) / len(draws)
            assert abs(share - 1 / 3) < 0.05

    def test_rand_below_bound_one(self):
        engine = _engine(AGProtocol(4), Configuration([1] * 4))
        assert engine.rand_below(1) == 0


class TestFastLoop:
    def test_max_events_honoured_exactly(self):
        engine = _engine(AGProtocol(64), Configuration.all_in_state(0, 64, 64))
        assert engine.run(max_events=10) is False
        assert engine.events == 10

    def test_resumable_after_budget(self):
        engine = _engine(AGProtocol(32), Configuration.all_in_state(0, 32, 32))
        engine.run(max_events=5)
        assert engine.run() is True
        assert engine.counts == [1] * 32

    @pytest.mark.parametrize(
        "protocol_factory",
        [lambda: AGProtocol(64), lambda: TreeRankingProtocol(16, k=2)],
        ids=["same-state", "general"],
    )
    def test_exhausted_budget_is_noop(self, protocol_factory):
        """A second run() with a smaller/equal budget must not advance."""
        protocol = protocol_factory()
        start = Configuration.all_in_state(0, protocol.num_agents,
                                           protocol.num_states)
        engine = _engine(protocol, start)
        engine.run(max_events=10)
        before = (engine.events, engine.interactions, list(engine.counts))
        assert engine.run(max_events=5) is False
        assert (engine.events, engine.interactions, list(engine.counts)) == before
        assert engine.run(max_events=10) is False
        assert engine.events == 10

    def test_large_population_pileup_ranks(self):
        """Exercises the proposal sampler and the mode switch to Fenwick."""
        n = 300
        engine = _engine(AGProtocol(n), Configuration.all_in_state(0, n, n))
        assert engine.run() is True
        assert engine.counts == [1] * n

    def test_near_silent_start_uses_fenwick_path(self):
        """One duplicate among n agents: acceptance would be ~1/n, so the
        fast loop must start in Fenwick mode and still be exact."""
        n = 200
        counts = [1] * n
        counts[3] = 2
        counts[n - 1] = 0
        engine = _engine(AGProtocol(n), Configuration(counts))
        assert engine.run() is True
        assert engine.counts == [1] * n

    def test_fast_and_general_loops_agree_distributionally(self):
        protocol = AGProtocol(16)
        start = Configuration.all_in_state(0, 16, 16)

        def median(base, **kwargs):
            times = []
            for seed in range(60):
                engine = _engine(protocol, start, seed=base + seed)
                engine.run(**kwargs)
                times.append(engine.interactions)
            return float(np.median(times))

        fast = median(0)
        # max_interactions forces the instrumented general loop.
        general = median(5000, max_interactions=1 << 40)
        assert abs(fast / general - 1) < 0.15


class TestJumpGeometricDistribution:
    @pytest.mark.slow
    def test_skip_distribution_matches_geometric(self):
        """One productive pair among n=20 agents: skip ~ Geometric(2/380)."""
        protocol = AGProtocol(20)
        counts = [1] * 20
        counts[0] = 2
        counts[19] = 0
        samples = []
        for seed in range(400):
            engine = _engine(protocol, Configuration(counts), seed=seed)
            event = engine.step()
            samples.append(event.interactions)
        p = 2 / (20 * 19)
        expected_mean = 1 / p  # 190
        mean = float(np.mean(samples))
        # 400 samples of Geometric(1/190): std of mean ≈ 190/20 ≈ 9.5
        assert abs(mean - expected_mean) < 40
