"""Unit tests for scenario specifications: parsing, validation, files."""

import json

import pytest

from repro.exceptions import ExperimentError
from repro.scenarios import (
    FaultPhase,
    ProtocolSpec,
    RunPhase,
    Scenario,
    SchedulerSpec,
    StartSpec,
)

def _minimal_dict():
    return {
        "name": "t",
        "protocol": {"kind": "ag", "num_agents": 12},
        "phases": [
            {"run": {"until": "silence", "max_events": 1000}},
            {"fault": {"kind": "corrupt", "fraction": 0.5}},
            {"run": {"until": "silence", "max_events": 1000}},
        ],
    }


class TestProtocolSpec:
    def test_build_each_kind(self):
        assert ProtocolSpec(kind="ag", num_agents=10).build().num_agents == 10
        assert ProtocolSpec(kind="ring", num_agents=20).build().num_agents == 20
        assert ProtocolSpec(kind="tree", num_agents=13, k=3).build().k == 3
        line = ProtocolSpec(kind="line", num_agents=96, m=2).build()
        assert line.num_agents == 96

    def test_build_at_churned_size(self):
        spec = ProtocolSpec(kind="line", num_agents=96, m=2)
        assert spec.build(num_agents=110).num_agents == 110

    def test_unknown_kind_rejected(self):
        with pytest.raises(ExperimentError):
            ProtocolSpec(kind="nope", num_agents=10)

    def test_tiny_population_rejected(self):
        with pytest.raises(ExperimentError):
            ProtocolSpec(kind="ag", num_agents=1)


class TestPhaseValidation:
    def test_run_until_events_needs_budget(self):
        with pytest.raises(ExperimentError):
            RunPhase(until="events")

    def test_predicate_name_validated(self):
        with pytest.raises(ExperimentError):
            RunPhase(until="predicate", predicate="nope")

    def test_corrupt_needs_victims(self):
        with pytest.raises(ExperimentError):
            FaultPhase(kind="corrupt")

    def test_fraction_range(self):
        with pytest.raises(ExperimentError):
            FaultPhase(kind="corrupt", fraction=1.5)

    def test_churn_needs_churn(self):
        with pytest.raises(ExperimentError):
            FaultPhase(kind="churn")

    def test_victim_count_resolution(self):
        assert FaultPhase(kind="corrupt", agents=5).victim_count(100) == 5
        assert FaultPhase(kind="corrupt", fraction=0.25).victim_count(100) == 25
        # a tiny fraction still corrupts at least one agent
        assert FaultPhase(kind="corrupt", fraction=0.001).victim_count(10) == 1
        # never more victims than agents
        assert FaultPhase(kind="corrupt", agents=99).victim_count(10) == 10

    def test_scheduler_validation(self):
        with pytest.raises(ExperimentError):
            SchedulerSpec(kind="clustered", across=0.0)
        with pytest.raises(ExperimentError):
            SchedulerSpec(kind="state_biased", extra_weight=1.5)
        assert SchedulerSpec().is_uniform

    def test_start_validation(self):
        with pytest.raises(ExperimentError):
            StartSpec(kind="k_distant")
        with pytest.raises(ExperimentError):
            StartSpec(kind="nope")


class TestScenarioSerialisation:
    def test_round_trip(self):
        scenario = Scenario.from_dict(_minimal_dict())
        again = Scenario.from_dict(scenario.to_dict())
        assert again == scenario

    def test_empty_phases_rejected(self):
        data = _minimal_dict()
        data["phases"] = []
        with pytest.raises(ExperimentError):
            Scenario.from_dict(data)

    def test_missing_key_reported(self):
        with pytest.raises(ExperimentError, match="missing required key"):
            Scenario.from_dict({"name": "t"})

    def test_bad_phase_key_reported(self):
        data = _minimal_dict()
        data["phases"] = [{"jump": {}}]
        with pytest.raises(ExperimentError, match="run.*fault"):
            Scenario.from_dict(data)

    def test_unknown_field_reported(self):
        data = _minimal_dict()
        data["phases"][0] = {"run": {"untl": "silence"}}
        with pytest.raises(ExperimentError, match="bad phase"):
            Scenario.from_dict(data)

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(_minimal_dict()), encoding="utf-8")
        scenario = Scenario.from_file(str(path))
        assert scenario.name == "t"
        assert len(scenario.phases) == 3

    def test_from_yaml_file(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        path = tmp_path / "scenario.yaml"
        path.write_text(yaml.safe_dump(_minimal_dict()), encoding="utf-8")
        scenario = Scenario.from_file(str(path))
        assert scenario == Scenario.from_dict(_minimal_dict())

    def test_with_population(self):
        scenario = Scenario.from_dict(_minimal_dict())
        assert scenario.with_population(64).protocol.num_agents == 64


class TestTimelineSpecs:
    def _timeline_scenario(self):
        from repro.scenarios import EpochSpec, ProtocolSpec, RunPhase, Scenario, SchedulerSpec

        return Scenario(
            name="timeline",
            protocol=ProtocolSpec(kind="tree", num_agents=20),
            phases=(RunPhase(until="silence", max_events=1000),),
            timeline=(
                EpochSpec(
                    scheduler=SchedulerSpec(
                        kind="state_biased", extra_weight=0.2
                    ),
                    until="silence",
                ),
                EpochSpec(
                    scheduler=SchedulerSpec(
                        kind="clustered", num_clusters=3, across=0.1
                    ),
                    until="interactions",
                    value=5000,
                    label="mid",
                ),
                EpochSpec(scheduler=SchedulerSpec(kind="uniform")),
            ),
        )

    def test_timeline_round_trips_through_dict_and_json(self):
        import json

        from repro.scenarios import Scenario

        scenario = self._timeline_scenario()
        data = json.loads(json.dumps(scenario.to_dict()))
        assert Scenario.from_dict(data) == scenario

    def test_non_last_segment_needs_boundary(self):
        from repro.scenarios import EpochSpec, ProtocolSpec, RunPhase, Scenario, SchedulerSpec

        with pytest.raises(ExperimentError, match="not the last"):
            Scenario(
                name="bad",
                protocol=ProtocolSpec(kind="ag", num_agents=10),
                phases=(RunPhase(until="silence", max_events=10),),
                timeline=(
                    EpochSpec(scheduler=SchedulerSpec(kind="uniform")),
                    EpochSpec(scheduler=SchedulerSpec(kind="uniform")),
                ),
            )

    def test_timeline_excludes_scalar_scheduler(self):
        from repro.scenarios import EpochSpec, ProtocolSpec, RunPhase, Scenario, SchedulerSpec

        with pytest.raises(ExperimentError, match="both a scheduler"):
            Scenario(
                name="bad",
                protocol=ProtocolSpec(kind="ag", num_agents=10),
                phases=(RunPhase(until="silence", max_events=10),),
                scheduler=SchedulerSpec(kind="clustered"),
                timeline=(
                    EpochSpec(scheduler=SchedulerSpec(kind="uniform")),
                ),
            )

    def test_agent_schedulers_cannot_join_timelines(self):
        from repro.scenarios import EpochSpec, SchedulerSpec

        with pytest.raises(ExperimentError, match="agent-identity"):
            EpochSpec(
                scheduler=SchedulerSpec(kind="targeted", targets=2),
                until="silence",
            )

    def test_epoch_boundary_validation(self):
        from repro.scenarios import EpochSpec, SchedulerSpec

        with pytest.raises(ExperimentError, match="value"):
            EpochSpec(
                scheduler=SchedulerSpec(kind="uniform"), until="events"
            )
        with pytest.raises(ExperimentError, match="predicate"):
            EpochSpec(
                scheduler=SchedulerSpec(kind="uniform"),
                until="predicate",
                predicate="nonsense",
            )

    def test_agent_scheduler_spec_validation(self):
        from repro.scenarios import SchedulerSpec

        with pytest.raises(ExperimentError, match="targets"):
            SchedulerSpec(kind="targeted", targets=0)
        with pytest.raises(ExperimentError, match="target_weight"):
            SchedulerSpec(kind="targeted", target_weight=0.0)
        with pytest.raises(ExperimentError, match="floor"):
            SchedulerSpec(kind="degree_skewed", floor=1.5)
        assert SchedulerSpec(kind="degree_skewed").is_agent_level
        assert not SchedulerSpec(kind="clustered").is_agent_level
