"""Tests for campaign execution: seeding, pooling, reproducibility."""

import pytest

from repro.exceptions import ExperimentError
from repro.scenarios import (
    CampaignRunner,
    FaultPhase,
    ProtocolSpec,
    RunPhase,
    Scenario,
    StartSpec,
    get_campaign,
    run_campaign,
)


def _scenario(n=16):
    return Scenario(
        name="campaign-test",
        protocol=ProtocolSpec(kind="ag", num_agents=n),
        start=StartSpec(kind="random"),
        phases=(
            RunPhase(until="silence", max_events=100_000),
            FaultPhase(kind="corrupt", fraction=0.3),
            RunPhase(until="silence", max_events=100_000),
        ),
    )


def _fingerprint(campaign):
    return [
        (
            result.total_interactions,
            result.total_events,
            result.final_configuration.as_tuple(),
            [(log.events, log.stop_reason) for log in result.phase_logs],
        )
        for result in campaign.results
    ]


class TestRunCampaign:
    def test_repetitions_are_independent(self):
        campaign = run_campaign(_scenario(), repetitions=3, seed=0)
        assert campaign.repetitions == 3
        fingerprints = _fingerprint(campaign)
        assert len(set(map(str, fingerprints))) > 1

    def test_recovered_fraction(self):
        campaign = run_campaign(_scenario(), repetitions=3, seed=0)
        assert campaign.recovered_fraction == 1.0

    def test_bad_repetitions(self):
        with pytest.raises(ExperimentError):
            run_campaign(_scenario(), repetitions=0)

    def test_bit_identical_across_worker_counts(self):
        scenario = _scenario()
        serial = run_campaign(scenario, repetitions=4, seed=42, workers=1)
        pooled = run_campaign(scenario, repetitions=4, seed=42, workers=3)
        assert _fingerprint(serial) == _fingerprint(pooled)

    def test_canned_campaign_pickles_into_pool(self):
        scenario = get_campaign("line_churn_storm").build("smoke")
        serial = run_campaign(scenario, repetitions=2, seed=7)
        pooled = run_campaign(scenario, repetitions=2, seed=7, workers=2)
        assert _fingerprint(serial) == _fingerprint(pooled)

    def test_different_seeds_differ(self):
        a = run_campaign(_scenario(), repetitions=2, seed=1)
        b = run_campaign(_scenario(), repetitions=2, seed=2)
        assert _fingerprint(a) != _fingerprint(b)


class TestCampaignRunner:
    def test_runner_policy_applies(self):
        runner = CampaignRunner(repetitions=2, seed=5, workers=1)
        campaign = runner.run(_scenario())
        assert campaign.repetitions == 2
        assert campaign.seed == 5
        direct = run_campaign(_scenario(), repetitions=2, seed=5)
        assert _fingerprint(campaign) == _fingerprint(direct)

    def test_default_max_events_policy(self):
        scenario = Scenario(
            name="unbudgeted",
            protocol=ProtocolSpec(kind="ag", num_agents=12),
            start=StartSpec(kind="pileup"),
            phases=(RunPhase(until="silence"),),
        )
        runner = CampaignRunner(repetitions=2, default_max_events=4)
        campaign = runner.run(scenario)
        assert all(
            result.phase_logs[0].events == 4 for result in campaign.results
        )
