"""Tests for scenario execution: phases, faults, churn, predicates."""

import pytest

from repro.exceptions import ExperimentError
from repro.scenarios import (
    FaultPhase,
    ProtocolSpec,
    RunPhase,
    Scenario,
    SchedulerSpec,
    StartSpec,
    get_campaign,
    list_campaigns,
    run_scenario,
)


def _scenario(phases, *, kind="ag", n=16, scheduler=None, start=None):
    return Scenario(
        name="t",
        protocol=ProtocolSpec(kind=kind, num_agents=n),
        phases=tuple(phases),
        start=start or StartSpec(kind="random"),
        scheduler=scheduler or SchedulerSpec(),
    )


class TestRunPhases:
    def test_stabilise_logs_silence(self):
        result = run_scenario(
            _scenario([RunPhase(until="silence", max_events=100_000)]),
            seed=1,
        )
        (log,) = result.phase_logs
        assert log.kind == "run"
        assert log.silent and log.stop_reason == "silence"
        assert log.distance == 0
        assert result.final_configuration.is_ranked(16)

    def test_event_budget_stops_run(self):
        result = run_scenario(
            _scenario(
                [RunPhase(until="events", max_events=3)],
                start=StartSpec(kind="pileup"),
            ),
            seed=1,
        )
        (log,) = result.phase_logs
        assert not log.silent
        assert log.stop_reason == "events"
        assert log.events == 3

    def test_default_max_events_caps_unbudgeted_phase(self):
        result = run_scenario(
            _scenario(
                [RunPhase(until="silence")], start=StartSpec(kind="pileup")
            ),
            seed=1,
            default_max_events=5,
        )
        (log,) = result.phase_logs
        assert log.events == 5 and log.stop_reason == "events"

    def test_predicate_phase_stops_at_ranked(self):
        result = run_scenario(
            _scenario(
                [
                    RunPhase(
                        until="predicate",
                        predicate="ranked",
                        max_events=200_000,
                        check_every=16,
                    )
                ]
            ),
            seed=3,
        )
        (log,) = result.phase_logs
        assert log.stop_reason in ("predicate", "silence")
        assert result.final_configuration.is_ranked(16)

    def test_solved_start_is_instant_silence(self):
        result = run_scenario(
            _scenario(
                [RunPhase(until="silence")], start=StartSpec(kind="solved")
            ),
            seed=0,
        )
        (log,) = result.phase_logs
        assert log.silent and log.events == 0


class TestFaultPhases:
    def test_corrupt_then_recover(self):
        result = run_scenario(
            _scenario(
                [
                    RunPhase(until="silence", max_events=100_000),
                    FaultPhase(kind="corrupt", fraction=0.5),
                    RunPhase(until="silence", max_events=100_000),
                ]
            ),
            seed=2,
        )
        run1, fault, run2 = result.phase_logs
        assert fault.kind == "fault" and fault.stop_reason == "fault"
        assert run2.silent
        assert result.recovered_all
        assert result.final_configuration.is_ranked(16)

    def test_swap_fault_is_deterministic(self):
        scenario = _scenario(
            [
                RunPhase(until="silence", max_events=100_000),
                FaultPhase(kind="swap", state_a=0, state_b=1),
                RunPhase(until="silence", max_events=100_000),
            ]
        )
        a = run_scenario(scenario, seed=5)
        b = run_scenario(scenario, seed=5)
        assert (
            a.final_configuration == b.final_configuration
        )
        assert a.total_interactions == b.total_interactions

    def test_crash_symbolic_first_extra(self):
        result = run_scenario(
            _scenario(
                [
                    RunPhase(until="silence", max_events=200_000),
                    FaultPhase(
                        kind="crash",
                        fraction=0.25,
                        replacement_state="first_extra",
                    ),
                    RunPhase(until="silence", max_events=200_000),
                ],
                kind="tree",
                n=13,
            ),
            seed=4,
        )
        assert result.recovered_all

    def test_crash_first_extra_rejected_without_extras(self):
        with pytest.raises(ExperimentError, match="no extra states"):
            run_scenario(
                _scenario(
                    [
                        FaultPhase(
                            kind="crash",
                            agents=2,
                            replacement_state="first_extra",
                        ),
                        RunPhase(until="silence", max_events=1000),
                    ]
                ),
                seed=1,
            )

    def test_recovery_pairs_share_trailing_run(self):
        result = run_scenario(
            _scenario(
                [
                    FaultPhase(kind="corrupt", agents=4),
                    FaultPhase(kind="swap", state_a=0, state_b=2),
                    RunPhase(until="silence", max_events=100_000),
                    FaultPhase(kind="corrupt", agents=2),
                ]
            ),
            seed=6,
        )
        pairs = result.recovery_pairs()
        assert len(pairs) == 3
        assert pairs[0][1] is pairs[1][1]  # both faults recover in one run
        assert pairs[2][1] is None  # trailing fault has no recovery phase


class TestChurn:
    def test_churn_resizes_population(self):
        result = run_scenario(
            _scenario(
                [
                    RunPhase(until="silence", max_events=100_000),
                    FaultPhase(kind="churn", departures=4, arrivals=10),
                    RunPhase(until="silence", max_events=100_000),
                ]
            ),
            seed=7,
        )
        run1, fault, run2 = result.phase_logs
        assert run1.num_agents == 16
        assert fault.num_agents == 22
        assert run2.silent
        assert result.final_configuration.num_agents == 22
        # AG's state space tracks n, so the rebuilt protocol grew too.
        assert result.final_configuration.num_states == 22
        assert result.final_configuration.is_ranked(22)

    def test_churn_on_line_protocol_stays_in_lattice_window(self):
        result = run_scenario(
            Scenario(
                name="churn-line",
                protocol=ProtocolSpec(kind="line", num_agents=96, m=2),
                start=StartSpec(kind="random"),
                phases=(
                    RunPhase(until="silence", max_events=300_000),
                    FaultPhase(
                        kind="churn",
                        departures=12,
                        arrivals=2,
                        arrival_state="first_extra",
                    ),
                    RunPhase(until="silence", max_events=300_000),
                ),
            ),
            seed=8,
        )
        assert result.recovered_all
        assert result.final_configuration.num_agents == 86

    def test_churn_retiers_line_lattice_past_the_window(self):
        """Growing n past the pinned m=2 window re-tiers to m=4.

        The m=2 lattice covers 72..120 agents; churn to 960 lands
        exactly on the m=4 lattice, so the rebuilt protocol must carry
        the new parameter instead of raising — and the run must still
        recover on the re-tiered lattice.
        """
        result = run_scenario(
            Scenario(
                name="churn-line-retier",
                protocol=ProtocolSpec(kind="line", num_agents=96, m=2),
                start=StartSpec(kind="random"),
                phases=(
                    RunPhase(until="silence", max_events=300_000),
                    FaultPhase(kind="churn", departures=0, arrivals=864),
                    RunPhase(until="silence", max_events=2_000_000),
                ),
            ),
            seed=9,
        )
        assert result.recovered_all
        assert result.final_configuration.num_agents == 960
        # LineOfTraps(m=4): 960 rank states + X.
        assert result.final_configuration.num_states == 961

    def test_churn_retiers_ring_lattice_past_the_window(self):
        """A pinned ring grows past m(m+1); the rebuild re-derives m."""
        result = run_scenario(
            Scenario(
                name="churn-ring-retier",
                protocol=ProtocolSpec(kind="ring", num_agents=12, m=3),
                start=StartSpec(kind="random"),
                phases=(
                    RunPhase(until="silence", max_events=100_000),
                    FaultPhase(kind="churn", departures=0, arrivals=18),
                    RunPhase(until="silence", max_events=500_000),
                ),
            ),
            seed=10,
        )
        assert result.recovered_all
        assert result.final_configuration.num_agents == 30
        assert result.final_configuration.num_states == 30

    def test_churn_into_a_lattice_gap_still_fails_loudly(self):
        """Sizes between line lattices (121..959) have no honest m."""
        with pytest.raises(ExperimentError, match="lattice"):
            run_scenario(
                Scenario(
                    name="churn-line-gap",
                    protocol=ProtocolSpec(kind="line", num_agents=96, m=2),
                    start=StartSpec(kind="random"),
                    phases=(
                        FaultPhase(kind="churn", departures=0, arrivals=100),
                        RunPhase(until="silence", max_events=10_000),
                    ),
                ),
                seed=11,
            )

    def test_churn_below_two_agents_fails_loudly(self):
        # A scripted fault must not be silently weakened: departing more
        # agents than the population can spare is a scenario bug.
        with pytest.raises(ExperimentError, match="churn"):
            run_scenario(
                _scenario(
                    [
                        FaultPhase(kind="churn", departures=16, arrivals=0),
                        RunPhase(until="silence", max_events=10_000),
                    ],
                    n=4,
                ),
                seed=1,
            )

    def test_churn_through_transient_tiny_population(self):
        # Departures may dip the intermediate multiset below 2 as long
        # as arrivals restore a viable population.
        result = run_scenario(
            _scenario(
                [
                    FaultPhase(kind="churn", departures=3, arrivals=4),
                    RunPhase(until="silence", max_events=10_000),
                ],
                n=4,
            ),
            seed=1,
        )
        assert result.final_configuration.num_agents == 5


class TestDeterminism:
    @pytest.mark.parametrize(
        "campaign_id", [c.campaign_id for c in list_campaigns()]
    )
    def test_canned_campaigns_smoke_and_reproduce(self, campaign_id):
        scenario = get_campaign(campaign_id).build("smoke")
        a = run_scenario(scenario, seed=11)
        b = run_scenario(scenario, seed=11)
        assert a.recovered_all
        assert a.final_configuration == b.final_configuration
        assert [
            (log.interactions, log.events, log.stop_reason)
            for log in a.phase_logs
        ] == [
            (log.interactions, log.events, log.stop_reason)
            for log in b.phase_logs
        ]

    def test_scheduler_scenario_runs_scheduled_engine(self):
        result = run_scenario(
            _scenario(
                [RunPhase(until="silence", max_interactions=2_000_000)],
                n=12,
                scheduler=SchedulerSpec(
                    kind="clustered", num_clusters=3, across=0.1
                ),
            ),
            seed=9,
        )
        (log,) = result.phase_logs
        assert log.silent


class TestEpochTimelines:
    def test_mid_phase_epoch_switch_composes_with_churn(self):
        from repro.scenarios import EpochSpec

        # Segment 0 flips to segment 1 after 40 events — *inside* the
        # warm phase — then churn rebuilds protocol and engine; the
        # timeline must resume at the segment already reached.
        scenario = Scenario(
            name="epoch_churn",
            protocol=ProtocolSpec(kind="line", num_agents=96, m=2),
            start=StartSpec(kind="random"),
            timeline=(
                EpochSpec(
                    scheduler=SchedulerSpec(
                        kind="state_biased", extra_weight=0.3
                    ),
                    until="events",
                    value=40,
                ),
                EpochSpec(
                    scheduler=SchedulerSpec(
                        kind="clustered", num_clusters=2, across=0.2
                    ),
                ),
            ),
            phases=(
                RunPhase(until="events", max_events=80, label="warm"),
                FaultPhase(
                    kind="churn",
                    departures=12,
                    arrivals=6,
                    arrival_state="first_extra",
                    label="churn -12/+6",
                ),
                RunPhase(
                    until="silence", max_events=200_000, label="recover"
                ),
            ),
        )
        result = run_scenario(scenario, seed=4)
        warm, fault, recover = result.phase_logs
        assert warm.events == 80
        # The boundary fired mid-phase, before the churn.
        assert warm.scheduler == "clustered@epoch1"
        # The rebuilt engine resumed the timeline at epoch 1.
        assert fault.scheduler == "clustered@epoch1"
        assert recover.scheduler == "clustered@epoch1"
        assert recover.silent
        assert result.recovered_all

    def test_epoch_campaigns_are_canned(self):
        ids = {c.campaign_id for c in list_campaigns()}
        assert "ag_epoch_cluster_flip" in ids
        assert "tree_epoch_bias_flip" in ids

    def test_bias_flip_at_silence_recovers_under_flipped_bias(self):
        campaign = get_campaign("tree_epoch_bias_flip")
        result = run_scenario(campaign.build("smoke"), seed=1)
        stabilise, crash, recover = result.phase_logs
        # The silence boundary fired when the first phase silenced, so
        # everything after it runs under the flipped bias.
        assert stabilise.scheduler == "state_biased@epoch1"
        assert recover.scheduler == "state_biased@epoch1"
        assert result.recovered_all


class TestAgentSchedulerScenarios:
    def test_targeted_scenario_runs_on_agent_engine(self):
        result = run_scenario(
            _scenario(
                [RunPhase(until="silence", max_events=100_000)],
                scheduler=SchedulerSpec(
                    kind="targeted", targets=3, target_weight=0.2
                ),
            ),
            seed=5,
        )
        (log,) = result.phase_logs
        assert log.silent
        assert log.scheduler == "targeted"
        assert result.final_configuration.is_ranked(16)

    def test_degree_skewed_scenario_runs(self):
        result = run_scenario(
            _scenario(
                [RunPhase(until="silence", max_events=100_000)],
                scheduler=SchedulerSpec(
                    kind="degree_skewed", exponent=1.5, floor=0.1
                ),
            ),
            seed=6,
        )
        (log,) = result.phase_logs
        assert log.silent
        assert log.scheduler == "degree_skewed"


class TestNumpyBackendScenarios:
    """``run_scenario(backend="numpy")`` drives uniform phases on the
    batch kernel; fault seams (resync, churn rebuild) must compose."""

    def test_uniform_scenario_runs_on_batch_engine(self):
        from repro.scenarios.engine import _make_engine
        from repro.core.batch import BatchEngine
        from repro.core.engine import make_rng
        from repro.configurations.generators import random_configuration

        scenario = _scenario([RunPhase(until="silence", max_events=100_000)])
        protocol = scenario.protocol.build()
        start = random_configuration(protocol, seed=0)
        engine = _make_engine(
            scenario, protocol, start, make_rng(0), backend="numpy"
        )
        assert isinstance(engine, BatchEngine)

    def test_corrupt_then_recover_on_numpy_backend(self):
        result = run_scenario(
            _scenario(
                [
                    RunPhase(until="silence", max_events=100_000),
                    FaultPhase(kind="corrupt", fraction=0.5),
                    RunPhase(until="silence", max_events=100_000),
                ]
            ),
            seed=9,
            backend="numpy",
        )
        assert result.recovered_all
        assert result.final_configuration.is_ranked(16)

    def test_churn_then_recover_on_numpy_backend(self):
        result = run_scenario(
            _scenario(
                [
                    RunPhase(until="silence", max_events=100_000),
                    FaultPhase(kind="churn", departures=4, arrivals=10),
                    RunPhase(until="silence", max_events=200_000),
                ]
            ),
            seed=4,
            backend="numpy",
        )
        assert result.recovered_all
        assert result.phase_logs[-1].num_agents == 22
        assert result.final_configuration.is_ranked(22)

    def test_numpy_backend_is_deterministic_in_the_seed(self):
        scenario = _scenario(
            [
                RunPhase(until="silence", max_events=100_000),
                FaultPhase(kind="corrupt", fraction=0.25),
                RunPhase(until="silence", max_events=100_000),
            ]
        )
        a = run_scenario(scenario, seed=12, backend="numpy")
        b = run_scenario(scenario, seed=12, backend="numpy")
        assert a.final_configuration.counts_list() == (
            b.final_configuration.counts_list()
        )
        assert [log.interactions for log in a.phase_logs] == (
            [log.interactions for log in b.phase_logs]
        )

    def test_biased_scenario_keeps_scalar_engine(self):
        result = run_scenario(
            _scenario(
                [RunPhase(until="silence", max_events=100_000)],
                scheduler=SchedulerSpec(
                    kind="targeted", targets=3, target_weight=0.2
                ),
            ),
            seed=5,
            backend="numpy",
        )
        (log,) = result.phase_logs
        assert log.silent
        assert log.scheduler == "targeted"
