"""Tests for pair schedulers and the scheduled engine seam."""

import numpy as np
import pytest

from repro import (
    AGProtocol,
    ScheduledEngine,
    TreeRankingProtocol,
    UniformScheduler,
    random_configuration,
    run_protocol,
)
from repro.exceptions import ExperimentError
from repro.scenarios import SchedulerSpec, build_scheduler
from repro.scenarios.schedulers import ClusteredScheduler, StateBiasedScheduler


class TestSchedulerConstruction:
    def test_uniform_resolves_to_none(self):
        # None keeps run_protocol on the allocation-free jump fast path.
        protocol = AGProtocol(10)
        assert build_scheduler(SchedulerSpec(kind="uniform"), protocol) is None
        assert build_scheduler(None, protocol) is None

    def test_state_biased_splits_ranks_and_extras(self):
        protocol = TreeRankingProtocol(13, k=3)
        scheduler = build_scheduler(
            SchedulerSpec(kind="state_biased", extra_weight=0.25), protocol
        )
        assert scheduler.pair_weight(0, 1) == 1.0
        line_state = protocol.num_ranks
        assert scheduler.pair_weight(0, line_state) == 0.25
        assert scheduler.pair_weight(line_state, line_state) == 0.0625

    def test_clustered_blocks(self):
        scheduler = ClusteredScheduler(num_states=10, num_clusters=2,
                                       across=0.1)
        assert scheduler.pair_weight(0, 4) == 1.0
        assert scheduler.pair_weight(0, 9) == 0.1
        assert scheduler.cluster_of(0) != scheduler.cluster_of(9)

    def test_weight_bounds_enforced(self):
        with pytest.raises(ExperimentError):
            StateBiasedScheduler([1.0, 0.0])
        with pytest.raises(ExperimentError):
            StateBiasedScheduler([])
        with pytest.raises(ExperimentError):
            ClusteredScheduler(num_states=4, num_clusters=0)

    def test_weight_matrix_shape(self):
        scheduler = ClusteredScheduler(num_states=6, num_clusters=3)
        matrix = scheduler.weight_matrix(6)
        assert matrix.shape == (6, 6)
        assert matrix.min() > 0.0 and matrix.max() <= 1.0


class TestScheduledEngine:
    def test_trivial_bias_matches_sequential_engine_stream(self):
        # A scheduler with every weight 1 accepts every draw, so the
        # engine consumes pair draws exactly like SequentialEngine and
        # must produce the same trajectory from the same seed.
        from repro import SequentialEngine

        protocol = AGProtocol(12)
        start = random_configuration(protocol, seed=4)
        biased = StateBiasedScheduler([1.0] * protocol.num_states)
        a = ScheduledEngine(
            protocol, start, np.random.default_rng(11), biased
        )
        b = SequentialEngine(protocol, start, np.random.default_rng(11))
        assert a.run(max_events=200) == b.run(max_events=200)
        assert a.counts == b.counts
        assert a.interactions == b.interactions

    def test_clustered_run_reaches_silence_and_ranks(self):
        protocol = AGProtocol(16)
        start = random_configuration(protocol, seed=1)
        scheduler = ClusteredScheduler(
            num_states=protocol.num_states, num_clusters=4, across=0.05
        )
        result = run_protocol(protocol, start, seed=1, scheduler=scheduler)
        assert result.silent
        assert protocol.is_ranked(result.final_configuration)
        # Biased jump runs compile into the weighted fast path.
        assert result.engine_name == "weighted:clustered"

    def test_rejection_engine_still_reachable(self):
        protocol = AGProtocol(16)
        start = random_configuration(protocol, seed=1)
        scheduler = ClusteredScheduler(
            num_states=protocol.num_states, num_clusters=4, across=0.05
        )
        result = run_protocol(
            protocol, start, seed=1, engine="sequential", scheduler=scheduler
        )
        assert result.silent
        assert result.engine_name == "scheduled:clustered"

    def test_bad_engine_name_still_rejected_with_scheduler(self):
        from repro.exceptions import SimulationError

        protocol = AGProtocol(8)
        start = random_configuration(protocol, seed=0)
        scheduler = ClusteredScheduler(protocol.num_states, 2)
        with pytest.raises(SimulationError, match="unknown engine"):
            run_protocol(
                protocol, start, engine="sequentail", scheduler=scheduler
            )

    def test_uniform_scheduler_keeps_jump_engine(self):
        protocol = AGProtocol(16)
        start = random_configuration(protocol, seed=1)
        result = run_protocol(
            protocol, start, seed=1, scheduler=UniformScheduler()
        )
        assert result.engine_name == "jump"
        baseline = run_protocol(protocol, start, seed=1)
        assert result.final_configuration == baseline.final_configuration
        assert result.interactions == baseline.interactions

    def test_deterministic_given_seed(self):
        protocol = TreeRankingProtocol(13, k=3)
        start = random_configuration(protocol, seed=2)
        scheduler = StateBiasedScheduler(
            [1.0] * protocol.num_ranks + [0.3] * protocol.num_extra_states
        )
        runs = [
            run_protocol(
                protocol, start, seed=9, scheduler=scheduler,
                max_events=10_000,
            )
            for _ in range(2)
        ]
        assert runs[0].final_configuration == runs[1].final_configuration
        assert runs[0].interactions == runs[1].interactions

    def test_biased_run_still_silences_tree(self):
        protocol = TreeRankingProtocol(13, k=3)
        start = random_configuration(protocol, seed=3)
        scheduler = StateBiasedScheduler(
            [1.0] * protocol.num_ranks + [0.2] * protocol.num_extra_states
        )
        result = run_protocol(protocol, start, seed=3, scheduler=scheduler)
        assert result.silent
        assert protocol.is_ranked(result.final_configuration)
