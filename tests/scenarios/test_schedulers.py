"""Tests for pair schedulers and the scheduled engine seam."""

import numpy as np
import pytest

from repro import (
    AGProtocol,
    ScheduledEngine,
    TreeRankingProtocol,
    UniformScheduler,
    random_configuration,
    run_protocol,
)
from repro.exceptions import ExperimentError
from repro.scenarios import SchedulerSpec, build_scheduler
from repro.scenarios.schedulers import ClusteredScheduler, StateBiasedScheduler


class TestSchedulerConstruction:
    def test_uniform_resolves_to_none(self):
        # None keeps run_protocol on the allocation-free jump fast path.
        protocol = AGProtocol(10)
        assert build_scheduler(SchedulerSpec(kind="uniform"), protocol) is None
        assert build_scheduler(None, protocol) is None

    def test_state_biased_splits_ranks_and_extras(self):
        protocol = TreeRankingProtocol(13, k=3)
        scheduler = build_scheduler(
            SchedulerSpec(kind="state_biased", extra_weight=0.25), protocol
        )
        assert scheduler.pair_weight(0, 1) == 1.0
        line_state = protocol.num_ranks
        assert scheduler.pair_weight(0, line_state) == 0.25
        assert scheduler.pair_weight(line_state, line_state) == 0.0625

    def test_clustered_blocks(self):
        scheduler = ClusteredScheduler(num_states=10, num_clusters=2,
                                       across=0.1)
        assert scheduler.pair_weight(0, 4) == 1.0
        assert scheduler.pair_weight(0, 9) == 0.1
        assert scheduler.cluster_of(0) != scheduler.cluster_of(9)

    def test_weight_bounds_enforced(self):
        with pytest.raises(ExperimentError):
            StateBiasedScheduler([1.0, 0.0])
        with pytest.raises(ExperimentError):
            StateBiasedScheduler([])
        with pytest.raises(ExperimentError):
            ClusteredScheduler(num_states=4, num_clusters=0)

    def test_weight_matrix_shape(self):
        scheduler = ClusteredScheduler(num_states=6, num_clusters=3)
        matrix = scheduler.weight_matrix(6)
        assert matrix.shape == (6, 6)
        assert matrix.min() > 0.0 and matrix.max() <= 1.0


class TestScheduledEngine:
    def test_trivial_bias_matches_sequential_engine_stream(self):
        # A scheduler with every weight 1 accepts every draw, so the
        # engine consumes pair draws exactly like SequentialEngine and
        # must produce the same trajectory from the same seed.
        from repro import SequentialEngine

        protocol = AGProtocol(12)
        start = random_configuration(protocol, seed=4)
        biased = StateBiasedScheduler([1.0] * protocol.num_states)
        a = ScheduledEngine(
            protocol, start, np.random.default_rng(11), biased
        )
        b = SequentialEngine(protocol, start, np.random.default_rng(11))
        assert a.run(max_events=200) == b.run(max_events=200)
        assert a.counts == b.counts
        assert a.interactions == b.interactions

    def test_clustered_run_reaches_silence_and_ranks(self):
        protocol = AGProtocol(16)
        start = random_configuration(protocol, seed=1)
        scheduler = ClusteredScheduler(
            num_states=protocol.num_states, num_clusters=4, across=0.05
        )
        result = run_protocol(protocol, start, seed=1, scheduler=scheduler)
        assert result.silent
        assert protocol.is_ranked(result.final_configuration)
        # Biased jump runs compile into the weighted fast path.
        assert result.engine_name == "weighted:clustered"

    def test_rejection_engine_still_reachable(self):
        protocol = AGProtocol(16)
        start = random_configuration(protocol, seed=1)
        scheduler = ClusteredScheduler(
            num_states=protocol.num_states, num_clusters=4, across=0.05
        )
        result = run_protocol(
            protocol, start, seed=1, engine="sequential", scheduler=scheduler
        )
        assert result.silent
        assert result.engine_name == "scheduled:clustered"

    def test_bad_engine_name_still_rejected_with_scheduler(self):
        from repro.exceptions import SimulationError

        protocol = AGProtocol(8)
        start = random_configuration(protocol, seed=0)
        scheduler = ClusteredScheduler(protocol.num_states, 2)
        with pytest.raises(SimulationError, match="unknown engine"):
            run_protocol(
                protocol, start, engine="sequentail", scheduler=scheduler
            )

    def test_uniform_scheduler_keeps_jump_engine(self):
        protocol = AGProtocol(16)
        start = random_configuration(protocol, seed=1)
        result = run_protocol(
            protocol, start, seed=1, scheduler=UniformScheduler()
        )
        assert result.engine_name == "jump"
        baseline = run_protocol(protocol, start, seed=1)
        assert result.final_configuration == baseline.final_configuration
        assert result.interactions == baseline.interactions

    def test_deterministic_given_seed(self):
        protocol = TreeRankingProtocol(13, k=3)
        start = random_configuration(protocol, seed=2)
        scheduler = StateBiasedScheduler(
            [1.0] * protocol.num_ranks + [0.3] * protocol.num_extra_states
        )
        runs = [
            run_protocol(
                protocol, start, seed=9, scheduler=scheduler,
                max_events=10_000,
            )
            for _ in range(2)
        ]
        assert runs[0].final_configuration == runs[1].final_configuration
        assert runs[0].interactions == runs[1].interactions

    def test_biased_run_still_silences_tree(self):
        protocol = TreeRankingProtocol(13, k=3)
        start = random_configuration(protocol, seed=3)
        scheduler = StateBiasedScheduler(
            [1.0] * protocol.num_ranks + [0.2] * protocol.num_extra_states
        )
        result = run_protocol(protocol, start, seed=3, scheduler=scheduler)
        assert result.silent
        assert protocol.is_ranked(result.final_configuration)


class TestAgentSchedulers:
    def test_targeted_suppression_weights(self):
        from repro.scenarios import TargetedSuppressionScheduler

        scheduler = TargetedSuppressionScheduler([0, 2], weight=0.1)
        vector = scheduler.weight_vector(5)
        assert list(vector) == [0.1, 1.0, 0.1, 1.0, 1.0]
        with pytest.raises(ExperimentError):
            TargetedSuppressionScheduler([], weight=0.1)
        with pytest.raises(ExperimentError):
            TargetedSuppressionScheduler([0], weight=0.0)
        # Targets outside the population fail loudly, not silently.
        with pytest.raises(ExperimentError):
            TargetedSuppressionScheduler([9], weight=0.5).weight_vector(5)

    def test_degree_skewed_weights_bounded_and_monotone(self):
        from repro.scenarios import DegreeSkewedScheduler

        scheduler = DegreeSkewedScheduler(exponent=2.0, floor=0.05)
        vector = scheduler.weight_vector(50)
        assert vector.min() >= 0.05 and vector.max() <= 1.0
        assert all(a <= b for a, b in zip(vector, vector[1:]))
        assert vector[-1] == 1.0

    def test_build_scheduler_returns_agent_schedulers(self):
        from repro.core.scheduler import AgentScheduler

        protocol = AGProtocol(12)
        for kind in ("targeted", "degree_skewed"):
            scheduler = build_scheduler(SchedulerSpec(kind=kind), protocol)
            assert isinstance(scheduler, AgentScheduler)

    def test_trivial_agent_bias_matches_sequential_engine_stream(self):
        # All-1.0 agent weights accept every draw, so the engine must
        # reproduce the SequentialEngine trajectory from the same seed.
        from repro import AgentScheduledEngine, SequentialEngine
        from repro.scenarios import TargetedSuppressionScheduler

        protocol = AGProtocol(12)
        start = random_configuration(protocol, seed=4)
        scheduler = TargetedSuppressionScheduler([0], weight=1.0)
        a = AgentScheduledEngine(
            protocol, start, np.random.default_rng(11), scheduler
        )
        b = SequentialEngine(protocol, start, np.random.default_rng(11))
        assert a.run(max_events=200) == b.run(max_events=200)
        assert a.counts == b.counts
        assert a.interactions == b.interactions

    def test_run_protocol_routes_agent_schedulers(self):
        from repro.scenarios import DegreeSkewedScheduler

        protocol = AGProtocol(14)
        result = run_protocol(
            protocol,
            random_configuration(protocol, seed=1),
            seed=1,
            scheduler=DegreeSkewedScheduler(exponent=1.0, floor=0.2),
            max_events=100_000,
        )
        assert result.engine_name == "agent:degree_skewed"
        assert result.silent

    def test_suppressed_agents_slow_convergence(self):
        # Suppressing a third of the population must cost real time:
        # compare median parallel time against the uniform engine.
        from repro import AgentScheduledEngine, SequentialEngine
        from repro.scenarios import TargetedSuppressionScheduler

        protocol = AGProtocol(12)
        start = random_configuration(protocol, seed=2)
        scheduler = TargetedSuppressionScheduler(range(4), weight=0.05)
        suppressed, uniform = [], []
        for seed in range(15):
            a = AgentScheduledEngine(
                protocol, start, np.random.default_rng(seed), scheduler
            )
            assert a.run(max_events=10**6)
            b = SequentialEngine(
                protocol, start, np.random.default_rng(seed + 500)
            )
            assert b.run(max_events=10**6)
            suppressed.append(a.interactions)
            uniform.append(b.interactions)
        assert np.median(suppressed) > np.median(uniform)

    def test_targeted_spec_exceeding_population_fails_loudly(self):
        # A scripted adversary must do what it says — no silent clamp.
        protocol = AGProtocol(10)
        with pytest.raises(ExperimentError, match="unsuppressed"):
            build_scheduler(
                SchedulerSpec(kind="targeted", targets=10), protocol
            )
