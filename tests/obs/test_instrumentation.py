"""Engine counters: accounting identities, derived ratios, zero cost.

The trajectory-equality guarantee (instrumented run == uninstrumented
run, bit for bit) lives in ``tests/property/test_prop_instrumentation``;
here we check the counter bag itself, the per-case instrument bench,
and the instrumentation-off overhead gate.
"""

import numpy as np
import pytest

from repro import AGProtocol, JumpEngine, run_protocol
from repro.analysis.bench import instrument_bench, render_instrument
from repro.configurations.generators import random_configuration
from repro.core.sequential import SequentialEngine
from repro.obs import Instrumentation, check_instrumentation_off_overhead
from repro.protocols.line import LineOfTrapsProtocol


class TestInstrumentationBag:
    def test_add_and_get(self):
        instr = Instrumentation()
        instr.add("events", 5)
        instr.add("events", 2)
        instr.add("never", 0)  # zero deltas never materialise
        assert instr.get("events") == 7
        assert "never" not in instr.counters

    def test_merge_folds_counters_and_marks(self):
        a = Instrumentation(trace=True)
        a.add("events", 1)
        a.mark("resync", events=1)
        b = Instrumentation(trace=True)
        b.add("events", 2)
        b.mark("resync", events=3)
        a.merge(b)
        assert a.get("events") == 3
        assert [m["events"] for m in a.marks] == [1, 3]

    def test_marks_are_noops_without_trace(self):
        instr = Instrumentation()
        instr.mark("resync", events=1)
        assert instr.marks == []

    def test_derived_ratios_only_for_active_loops(self):
        instr = Instrumentation()
        assert instr.derived() == {}
        instr.add_counters(events=100, skip_draws=100, pool_draws=40,
                           proposal_draws=100, sprint_events=30)
        derived = instr.derived()
        assert derived["proposals_per_pool_draw"] == pytest.approx(2.5)
        assert derived["sprint_share"] == pytest.approx(0.75)
        assert derived["skip_draws_per_event"] == pytest.approx(1.0)
        assert "acceptance" not in derived


class TestEngineCounters:
    def test_jump_counts_events_and_skips(self):
        protocol = AGProtocol(32)
        instr = Instrumentation()
        engine = JumpEngine(
            protocol,
            random_configuration(protocol, seed=1),
            np.random.default_rng(2),
            instrumentation=instr,
        )
        assert engine.run() is True
        assert instr.get("events") == engine.events
        assert instr.get("interactions") == engine.interactions
        # Jump chain: one geometric skip per event.
        assert instr.get("skip_draws") >= instr.get("events")

    def test_sequential_pair_draws_cover_interactions(self):
        protocol = AGProtocol(12)
        instr = Instrumentation()
        engine = SequentialEngine(
            protocol,
            random_configuration(protocol, seed=3),
            np.random.default_rng(4),
            instrumentation=instr,
        )
        engine.run(max_events=50)
        assert instr.get("pair_draws") == engine.interactions
        assert instr.get("events") == engine.events

    def test_run_protocol_attaches_counters_to_metadata(self):
        protocol = AGProtocol(16)
        instr = Instrumentation()
        result = run_protocol(
            protocol,
            random_configuration(protocol, seed=5),
            seed=6,
            instrumentation=instr,
        )
        assert result.metadata["instrumentation"]["counters"]["events"] \
            == result.events

    def test_line_fused_loop_reports_residual_cost(self):
        protocol = LineOfTrapsProtocol(m=2)
        instr = Instrumentation()
        engine = JumpEngine(
            protocol,
            random_configuration(protocol, seed=7, include_extras=True),
            np.random.default_rng(8),
            instrumentation=instr,
        )
        engine.run(max_events=500)
        derived = instr.derived()
        # The ROADMAP question: proposals per pool draw is a small
        # constant (~2.5), not O(m).
        assert 1.0 <= derived["proposals_per_pool_draw"] <= 8.0


class TestInstrumentBench:
    def test_quick_record_covers_the_suite(self):
        record = instrument_bench(quick=True, seed=7)
        by_case = {c["case"]: c for c in record["cases"]}
        assert "line-m4" in by_case
        line = by_case["line-m4"]
        assert line["counters"]["events"] > 0
        assert "proposals_per_pool_draw" in line["derived"]
        text = render_instrument(record)
        assert "line-m4 residual cost" in text
        assert "proposals per pool draw" in text


class TestOffOverhead:
    def test_unknown_case_rejected(self):
        from repro.exceptions import SimulationError

        with pytest.raises(SimulationError, match="unknown quick bench"):
            check_instrumentation_off_overhead(case_id="no-such-case")

    @pytest.mark.slow
    def test_off_path_within_tolerance(self):
        result = check_instrumentation_off_overhead(
            case_id="line-m4", tolerance=0.10, repeats=3
        )
        assert result["ratio"] >= 0.90
