"""Structured run traces: round-trip, schema, worker invariance.

The central claim: a campaign's merged logical trace is a pure function
of (campaign, scale, seed) — byte-identical at any worker count — and a
trace file alone is enough to rebuild the recovery tables.
"""

import json
import os

import pytest

from repro._io import atomic_write_json, atomic_write_text
from repro.exceptions import ExperimentError
from repro.obs import (
    TRACE_VERSION,
    TraceReader,
    TraceWriter,
    diff_traces,
    merge_trace_events,
    summarize_trace,
    validate_trace,
)
from repro.scenarios import get_campaign, run_campaign


def _smoke_campaign(workers=None, campaign_id="ag_corrupt_recover"):
    campaign = get_campaign(campaign_id)
    scenario = campaign.build("smoke")
    return run_campaign(
        scenario, repetitions=2, seed=5, workers=workers,
        collect_trace=True,
    )


class TestAtomicIO:
    def test_atomic_write_text_round_trip(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "hello\n")
        with open(path, "r", encoding="utf-8") as handle:
            assert handle.read() == "hello\n"
        # Overwrite is atomic too: no stray temp files remain.
        atomic_write_text(path, "world\n")
        with open(path, "r", encoding="utf-8") as handle:
            assert handle.read() == "world\n"
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_atomic_write_json_round_trip(self, tmp_path):
        path = str(tmp_path / "out.json")
        atomic_write_json(path, {"b": 1, "a": [1, 2]})
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle) == {"b": 1, "a": [1, 2]}


class TestTraceRoundTrip:
    def test_write_read_validate_summarize(self, tmp_path):
        result = _smoke_campaign()
        path = str(tmp_path / "trace.jsonl")
        writer = TraceWriter(path, source="test", campaign="ag_corrupt_recover")
        writer.extend(
            merge_trace_events([r.trace_events for r in result.results])
        )
        assert writer.write() == path

        reader = TraceReader(path)
        assert reader.header["version"] == TRACE_VERSION
        assert reader.header["campaign"] == "ag_corrupt_recover"
        validate_trace(reader.records)

        kinds = {r["kind"] for r in reader.logical()}
        assert {"run_start", "phase_start", "fault", "phase_end",
                "run_end"} <= kinds
        summary = summarize_trace(reader.records)
        assert "2 runs" in summary
        assert "Recovery after faults" in summary

    def test_reader_rejects_torn_and_versionless_files(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"kind": "run_start"}\n')
        with pytest.raises(ExperimentError, match="header"):
            TraceReader(path)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"kind": "header", "version": 99}\n')
        with pytest.raises(ExperimentError, match="version"):
            TraceReader(path)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json\n")
        with pytest.raises(ExperimentError, match="not valid JSON"):
            TraceReader(path)

    def test_validate_catches_missing_fields_and_unknown_kinds(self):
        header = {"kind": "header", "version": TRACE_VERSION, "source": "t"}
        with pytest.raises(ExperimentError, match="missing"):
            validate_trace([header, {"kind": "run_start", "run": 0}])
        with pytest.raises(ExperimentError, match="unknown kind"):
            validate_trace([header, {"kind": "wat"}])
        with pytest.raises(ExperimentError, match="second header"):
            validate_trace([header, dict(header)])


class TestWorkerInvariance:
    def test_merged_traces_identical_at_any_worker_count(self):
        serial = _smoke_campaign(workers=1)
        pooled = _smoke_campaign(workers=2)
        merged_serial = merge_trace_events(
            [r.trace_events for r in serial.results]
        )
        merged_pooled = merge_trace_events(
            [r.trace_events for r in pooled.results]
        )
        assert merged_serial == merged_pooled
        assert diff_traces(merged_serial, merged_pooled) == []

    def test_diff_reports_divergence(self):
        result = _smoke_campaign()
        merged = merge_trace_events(
            [r.trace_events for r in result.results]
        )
        mutated = [dict(r) for r in merged]
        mutated[1]["num_agents"] = 99999
        lines = diff_traces(merged, mutated)
        assert lines and "differs" in lines[0]

    def test_epoch_campaign_traces_epoch_switches(self):
        result = _smoke_campaign(campaign_id="ag_epoch_cluster_flip")
        merged = merge_trace_events(
            [r.trace_events for r in result.results]
        )
        switches = [r for r in merged if r["kind"] == "epoch_switch"]
        assert switches, "epoch campaign must trace its epoch boundaries"
        assert all("run" in r and "epoch" in r for r in switches)
