"""Metrics registry and the supervision observer seam.

The registry aggregates counter bags from any number of runs; the
observer seam on :func:`supervised_map` turns retries, quarantines, and
pool rebuilds into metrics without touching the results contract.
"""

import os

import pytest

from repro.analysis.supervision import SupervisionPolicy, supervised_map
from repro.obs import Instrumentation, MetricsRegistry


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.counter_add("events", 10)
        registry.counter_add("events", 5)
        registry.gauge_set("shards_done", 3)
        for value in [1.0, 2.0, 3.0, 4.0]:
            registry.observe("recovery_time", value)
        data = registry.to_dict()
        assert data["counters"]["events"] == 15
        assert data["gauges"]["shards_done"] == 3.0
        histogram = data["histograms"]["recovery_time"]
        assert histogram["count"] == 4
        assert histogram["mean"] == pytest.approx(2.5)

    def test_merge_counters_folds_instrumentation_bags(self):
        registry = MetricsRegistry()
        for seed in range(3):
            instr = Instrumentation()
            instr.add_counters(events=10 * (seed + 1), skip_draws=7)
            registry.merge_counters(instr.counters, prefix="engine_")
        assert registry.counters["engine_events"] == 60
        assert registry.counters["engine_skip_draws"] == 21

    def test_prometheus_exposition(self):
        registry = MetricsRegistry(namespace="repro")
        registry.counter_add("retries", 2)
        registry.gauge_set("eta seconds", 12.5)  # space gets sanitised
        registry.observe("runs", 3.0)
        text = registry.to_prometheus()
        assert "# TYPE repro_retries_total counter" in text
        assert "repro_retries_total 2" in text
        assert "repro_eta_seconds 12.5" in text
        assert 'repro_runs{quantile="0.5"}' in text
        assert "repro_runs_count 1" in text
        assert text.endswith("\n")

    def test_empty_registry_exports_cleanly(self):
        registry = MetricsRegistry()
        assert registry.to_prometheus() == ""
        assert registry.to_dict()["counters"] == {}


# ----------------------------------------------------------------------
# Module-level workers (process pools require picklable callables).
# ----------------------------------------------------------------------
def _flaky(job):
    """Crash on the poison value until its scratch file has 2 deaths."""
    value, poison, scratch = job
    if value == poison:
        attempts = 0
        if os.path.exists(scratch):
            with open(scratch, "r", encoding="utf-8") as handle:
                attempts = int(handle.read() or 0)
        attempts += 1
        with open(scratch, "w", encoding="utf-8") as handle:
            handle.write(str(attempts))
        if attempts <= 2:
            os._exit(23)
    return value * 2


def _always_crash(job):
    value, poison = job
    if value == poison:
        os._exit(23)
    return value * 2


class TestSupervisionObserver:
    def test_injected_retries_aggregate_into_metrics(self, tmp_path):
        scratch = str(tmp_path / "flaky-attempts")
        jobs = [(value, 3, scratch) for value in range(8)]
        policy = SupervisionPolicy(
            max_attempts=4, backoff_base=0.01, backoff_cap=0.02,
            fail_fast=False,
        )
        registry = MetricsRegistry()
        events = []

        def observer(kind, fields):
            events.append((kind, fields))
            registry.counter_add(f"supervision_{kind}")

        results, failures = supervised_map(
            _flaky, jobs, workers=2, policy=policy, observer=observer
        )
        # The flaky job eventually succeeded — results are complete and
        # identical to an unsupervised run.
        assert failures == []
        assert results == [value * 2 for value, _, _ in jobs]
        assert registry.counters["supervision_retry"] >= 1
        assert registry.counters.get("supervision_pool_rebuild", 0) >= 1
        retry = next(f for k, f in events if k == "retry")
        assert retry["job"] == 3 and retry["attempt"] >= 1
        assert retry["failure"] in ("crash", "hang")

    def test_quarantine_event_fires_with_job_index(self):
        jobs = [(value, 5) for value in range(8)]
        policy = SupervisionPolicy(
            max_attempts=2, backoff_base=0.01, backoff_cap=0.02,
            fail_fast=False,
        )
        events = []
        results, failures = supervised_map(
            _always_crash, jobs, workers=2, policy=policy,
            observer=lambda kind, fields: events.append((kind, fields)),
        )
        assert [f.index for f in failures] == [5]
        quarantines = [f for k, f in events if k == "quarantine"]
        assert [q["job"] for q in quarantines] == [5]
        assert quarantines[0]["failure"] == "crash"

    def test_broken_observer_never_breaks_the_map(self):
        jobs = [(value, 2) for value in range(6)]
        policy = SupervisionPolicy(
            max_attempts=2, backoff_base=0.01, backoff_cap=0.02,
            fail_fast=False,
        )

        def exploding_observer(kind, fields):
            raise RuntimeError("observer bug")

        results, failures = supervised_map(
            _always_crash, jobs, workers=2, policy=policy,
            observer=exploding_observer,
        )
        assert [f.index for f in failures] == [2]
        survivors = [r for i, r in enumerate(results) if i != 2]
        assert survivors == [v * 2 for v, _ in jobs if v != 2]

    def test_serial_error_quarantine_reports(self):
        def worker(job):
            if job == 1:
                raise ValueError("bad job")
            return job

        events = []
        results, failures = supervised_map(
            worker, [0, 1, 2], workers=1,
            policy=SupervisionPolicy(fail_fast=False),
            observer=lambda kind, fields: events.append((kind, fields)),
        )
        assert [f.index for f in failures] == [1]
        assert events == [("quarantine", {"job": 1, "failure": "error"})]
