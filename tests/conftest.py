"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AGProtocol,
    LineOfTrapsProtocol,
    RingOfTrapsProtocol,
    TreeRankingProtocol,
)


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def ag_small():
    return AGProtocol(12)


@pytest.fixture
def ring_small():
    return RingOfTrapsProtocol(m=4)  # n = 20


@pytest.fixture
def tree_small():
    return TreeRankingProtocol(13, k=3)


@pytest.fixture
def line_small():
    return LineOfTrapsProtocol(m=2)  # n = 72


def pytest_addoption(parser):
    parser.addoption(
        "--run-slow",
        action="store_true",
        default=False,
        help="also run tests marked slow",
    )


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running statistical test")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-slow"):
        return
    skip_slow = pytest.mark.skip(reason="needs --run-slow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
