"""Shared fixtures and markers for the repro test suite.

Markers (the CI tiers select on these):

* ``slow`` — long-running statistical tests.  Skipped unless
  ``--run-slow`` is given; the PR-gating tier-1 CI job additionally
  deselects them with ``-m "not slow"``, while the full matrix job
  passes ``--run-slow`` so nothing is skipped.
* ``property`` — hypothesis/property-based tests.  Applied
  automatically to everything under ``tests/property/``; select them
  alone with ``-m property`` (the nightly workflow does) or exclude
  them with ``-m "not property"`` for the fastest possible signal.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

_PROPERTY_DIR = Path(__file__).resolve().parent / "property"

from repro import (
    AGProtocol,
    LineOfTrapsProtocol,
    RingOfTrapsProtocol,
    TreeRankingProtocol,
)


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def ag_small():
    return AGProtocol(12)


@pytest.fixture
def ring_small():
    return RingOfTrapsProtocol(m=4)  # n = 20


@pytest.fixture
def tree_small():
    return TreeRankingProtocol(13, k=3)


@pytest.fixture
def line_small():
    return LineOfTrapsProtocol(m=2)  # n = 72


def pytest_addoption(parser):
    parser.addoption(
        "--run-slow",
        action="store_true",
        default=False,
        help="also run tests marked slow",
    )


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running statistical test")
    config.addinivalue_line(
        "markers",
        "property: hypothesis/property-based test (auto-applied under "
        "tests/property/)",
    )


def pytest_collection_modifyitems(config, items):
    for item in items:
        if _PROPERTY_DIR in Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.property)
    if config.getoption("--run-slow"):
        return
    skip_slow = pytest.mark.skip(reason="needs --run-slow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
