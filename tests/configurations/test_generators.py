"""Unit tests for initial-configuration generators."""

import pytest

from repro import (
    AGProtocol,
    LineOfTrapsProtocol,
    RingOfTrapsProtocol,
    TreeRankingProtocol,
    all_in_extras_configuration,
    all_in_state_configuration,
    distance_from_solved,
    doubled_prefix_configuration,
    k_distant_configuration,
    random_configuration,
    solved_configuration,
)
from repro.exceptions import ConfigurationError


class TestSolved:
    @pytest.mark.parametrize(
        "protocol",
        [AGProtocol(8), RingOfTrapsProtocol(m=3), TreeRankingProtocol(8, k=2)],
        ids=lambda p: p.name,
    )
    def test_solved_is_ranked_and_silent(self, protocol):
        config = solved_configuration(protocol)
        assert protocol.is_ranked(config)
        assert protocol.is_silent(config)
        assert distance_from_solved(protocol, config) == 0


class TestKDistant:
    @pytest.mark.parametrize("k", [0, 1, 5, 11])
    def test_exactly_k_ranks_missing(self, k):
        protocol = AGProtocol(12)
        config = k_distant_configuration(protocol, k, seed=k)
        assert distance_from_solved(protocol, config) == k
        assert config.num_agents == 12

    def test_extras_left_empty(self):
        protocol = TreeRankingProtocol(10, k=3)
        config = k_distant_configuration(protocol, 4, seed=1)
        assert config.agents_within(protocol.extra_states) == 0

    def test_k_bounds(self):
        protocol = AGProtocol(6)
        with pytest.raises(ConfigurationError):
            k_distant_configuration(protocol, 6, seed=0)
        with pytest.raises(ConfigurationError):
            k_distant_configuration(protocol, -1, seed=0)

    def test_zero_distant_is_solved(self):
        protocol = AGProtocol(9)
        assert k_distant_configuration(protocol, 0, seed=3) == (
            solved_configuration(protocol)
        )

    def test_deterministic_given_seed(self):
        protocol = RingOfTrapsProtocol(m=4)
        assert k_distant_configuration(protocol, 3, seed=7) == (
            k_distant_configuration(protocol, 3, seed=7)
        )

    def test_different_seeds_vary(self):
        protocol = RingOfTrapsProtocol(m=4)
        configs = {
            k_distant_configuration(protocol, 3, seed=s).as_tuple()
            for s in range(8)
        }
        assert len(configs) > 1


class TestRandom:
    def test_population_size(self):
        protocol = TreeRankingProtocol(20, k=3)
        config = random_configuration(protocol, seed=2)
        assert config.num_agents == 20
        assert config.num_states == protocol.num_states

    def test_rank_only_restriction(self):
        protocol = TreeRankingProtocol(20, k=3)
        config = random_configuration(protocol, seed=2, include_extras=False)
        assert config.agents_within(protocol.extra_states) == 0

    def test_extras_reachable_when_included(self):
        protocol = LineOfTrapsProtocol(m=2)
        hits = 0
        for seed in range(20):
            config = random_configuration(protocol, seed=seed)
            hits += config.count(protocol.x_state)
        assert hits > 0  # 72 agents × 20 seeds: X occupied sometimes


class TestAdversarial:
    def test_all_in_state(self):
        protocol = AGProtocol(7)
        config = all_in_state_configuration(protocol, 3)
        assert config.count(3) == 7
        assert config.support_size() == 1

    def test_all_in_extras(self):
        protocol = TreeRankingProtocol(9, k=2)
        config = all_in_extras_configuration(protocol, seed=1)
        assert config.agents_within(protocol.extra_states) == 9
        assert distance_from_solved(protocol, config) == 9

    def test_all_in_extras_needs_extras(self):
        with pytest.raises(ConfigurationError):
            all_in_extras_configuration(AGProtocol(5), seed=0)

    def test_doubled_prefix_even(self):
        protocol = AGProtocol(8)
        config = doubled_prefix_configuration(protocol)
        assert config.as_tuple() == (2, 2, 2, 2, 0, 0, 0, 0)
        assert distance_from_solved(protocol, config) == 4

    def test_doubled_prefix_odd(self):
        protocol = AGProtocol(7)
        config = doubled_prefix_configuration(protocol)
        assert config.num_agents == 7
        assert config.as_tuple() == (2, 2, 2, 1, 0, 0, 0)
