"""Unit tests for the EXPERIMENTS.md report generator (no heavy runs)."""

from repro.experiments import REGISTRY
from repro.experiments.base import ExperimentResult
from repro.experiments.report import PAPER_CLAIMS, _verdict


class TestPaperClaims:
    def test_every_experiment_has_a_claim(self):
        missing = set(REGISTRY) - set(PAPER_CLAIMS)
        assert not missing, f"experiments without paper claims: {missing}"

    def test_no_orphan_claims(self):
        orphans = set(PAPER_CLAIMS) - set(REGISTRY)
        assert not orphans, f"claims for unknown experiments: {orphans}"


class TestVerdicts:
    def _result(self, experiment_id, raw):
        return ExperimentResult(
            experiment_id=experiment_id, scale="smoke", tables=[], raw=raw
        )

    def test_figure_verdicts(self):
        ok = self._result("figure1", {"example_matches_paper": True})
        assert "matches" in _verdict(ok)
        bad = self._result("figure1", {"example_matches_paper": False})
        assert "MISMATCH" in _verdict(bad)

    def test_exponent_verdicts_render_numbers(self):
        result = self._result(
            "ag_quadratic", {"exponent": 2.034, "r_squared": 0.999}
        )
        assert "2.03" in _verdict(result)

    def test_crossover_verdict_both_branches(self):
        hit = self._result(
            "crossover", {"crossover_k": 16, "sqrt_n": 16.5}
        )
        assert "16" in _verdict(hit)
        miss = self._result(
            "crossover", {"crossover_k": None, "sqrt_n": 16.5}
        )
        assert "everywhere" in _verdict(miss)

    def test_ablation_verdict(self):
        result = self._result(
            "reset_ablation",
            {
                "trials": 20,
                "rows": [
                    {"variant": "real tree protocol", "ranked": 20},
                    {"variant": "all-green (no red phase)", "ranked": 0},
                    {"variant": "R1 only (no reset at all)", "ranked": 0},
                ],
            },
        )
        assert "20/20" in _verdict(result)

    def test_tradeoff_verdict(self):
        result = self._result(
            "state_time_tradeoff", {"knee_k": 6, "log2_n": 9}
        )
        assert "knee at k = 6" in _verdict(result)
