"""Multi-process chaos: SIGKILL cooperative joiners, converge anyway.

The cooperative contract of ``repro ensemble join``: N workers drain
one shared directory through crash-tolerant shard leases; killing any
subset of them at any instant loses nothing — committed shards carry
exclusive, checksummed ``.done`` markers, dead workers' leases expire
after the TTL and are reclaimed, and the survivors (or a late joiner)
finish the ensemble with ``aggregates.json`` byte-identical to an
uninterrupted serial run.  This drives the real CLI in subprocesses —
the same recipe as the CI ``chaos-smoke`` job's cooperative leg.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.ensemble.manifest import load_manifest

pytestmark = pytest.mark.slow

CAMPAIGN = "ag_corrupt_recover"
RUNS = "600"
SHARD_SIZE = "50"
SEED = "11"


def _env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    env["PYTHONHASHSEED"] = "0"
    return env


def _run_cmd(out_dir):
    return [
        sys.executable, "-m", "repro", "ensemble", "run",
        "--campaign", CAMPAIGN, "--scale", "smoke",
        "--runs", RUNS, "--shard-size", SHARD_SIZE, "--seed", SEED,
        "--out", out_dir,
    ]


def _join_cmd(out_dir, *extra):
    return [
        sys.executable, "-m", "repro", "ensemble", "join", out_dir,
        "--campaign", CAMPAIGN, "--scale", "smoke",
        "--runs", RUNS, "--shard-size", SHARD_SIZE, "--seed", SEED,
        "--ttl", "3", *extra,
    ]


def _reference_bytes(tmp_path):
    reference = str(tmp_path / "reference")
    subprocess.run(
        _run_cmd(reference), env=_env(), check=True,
        capture_output=True, timeout=300,
    )
    with open(os.path.join(reference, "aggregates.json"), "rb") as handle:
        return handle.read()


def _shards_done(out_dir):
    try:
        manifest = load_manifest(out_dir)
    except Exception:
        return 0, 0
    done = sum(
        1
        for shard in manifest["shards"]
        if os.path.exists(
            os.path.join(out_dir, f"shard-{shard['index']:05d}.done")
        )
    )
    return done, len(manifest["shards"])


def test_sigkilled_joiners_do_not_stop_the_fleet(tmp_path):
    reference = _reference_bytes(tmp_path)
    coop = str(tmp_path / "coop")
    trace = str(tmp_path / "w1.jsonl")

    survivor = subprocess.Popen(
        _join_cmd(coop, "--trace", trace), env=_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    victims = [
        subprocess.Popen(
            _join_cmd(coop), env=_env(),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        for _ in range(2)
    ]

    # SIGKILL the victims as soon as real progress exists but work
    # remains — mid-shard with probability ~1, leases still held.
    deadline = time.monotonic() + 240.0
    killed = False
    while time.monotonic() < deadline:
        done, total = _shards_done(coop)
        if total and done >= 2 and done < total:
            for victim in victims:
                victim.send_signal(signal.SIGKILL)
            for victim in victims:
                victim.wait(timeout=30)
            killed = True
            break
        if survivor.poll() is not None:
            break
        time.sleep(0.05)
    if not killed:
        for victim in victims:
            victim.kill()
            victim.wait(timeout=30)
        survivor.wait(timeout=60)
        pytest.skip("fleet finished before the kills could land")

    # The survivor alone must finish the whole ensemble: dead workers'
    # leases expire after the 3s TTL and their shards are reclaimed.
    assert survivor.wait(timeout=240) == 0

    with open(os.path.join(coop, "aggregates.json"), "rb") as handle:
        assert handle.read() == reference

    # The survivor's operational trace validates and shows the lease
    # protocol at work (acceptance: lease lifecycle in the run trace).
    check = subprocess.run(
        [sys.executable, "-m", "repro", "trace", "validate", trace],
        env=_env(), capture_output=True, timeout=60,
    )
    assert check.returncode == 0, check.stderr
    kinds = set()
    with open(trace, "r", encoding="utf-8") as handle:
        for line in handle:
            kinds.add(json.loads(line).get("kind"))
    assert "lease_claim" in kinds
    assert "shard_commit" in kinds


def test_late_joiner_finishes_an_abandoned_directory(tmp_path):
    reference = _reference_bytes(tmp_path)
    coop = str(tmp_path / "coop")

    victim = subprocess.Popen(
        _join_cmd(coop), env=_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 240.0
    killed = False
    while time.monotonic() < deadline:
        done, total = _shards_done(coop)
        if total and 0 < done < total:
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30)
            killed = True
            break
        if victim.poll() is not None:
            break
        time.sleep(0.05)
    if not killed:
        victim.wait(timeout=60)
        pytest.skip("joiner finished before the kill could land")

    # A fresh joiner arriving later reclaims the dead worker's lease
    # (after the TTL) and completes the ensemble bit-identically.
    subprocess.run(
        _join_cmd(coop), env=_env(), check=True,
        capture_output=True, timeout=300,
    )
    with open(os.path.join(coop, "aggregates.json"), "rb") as handle:
        assert handle.read() == reference


def test_sigterm_is_a_graceful_shutdown(tmp_path):
    coop = str(tmp_path / "coop")
    worker = subprocess.Popen(
        _join_cmd(coop), env=_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
    )
    # Give it time to claim (and likely finish) a first shard.
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        done, total = _shards_done(coop)
        if done >= 1 or worker.poll() is not None:
            break
        time.sleep(0.05)
    if worker.poll() is not None:
        pytest.skip("joiner finished before SIGTERM could land")
    worker.send_signal(signal.SIGTERM)
    try:
        _, stderr = worker.communicate(timeout=120)
    except subprocess.TimeoutExpired:
        worker.kill()
        raise
    assert worker.returncode == 143
    assert b"rejoin" in stderr
    # Graceful exit leaves no leases behind.
    assert not any(
        name.endswith(".lease") for name in os.listdir(coop)
    )
