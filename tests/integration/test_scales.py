"""Tests for benchmark scale selection via the environment."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.base import bench_scale_from_env


class TestBenchScaleFromEnv:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale_from_env() == "small"

    def test_explicit_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale_from_env(default="smoke") == "smoke"

    @pytest.mark.parametrize("scale", ["smoke", "small", "paper"])
    def test_env_override(self, monkeypatch, scale):
        monkeypatch.setenv("REPRO_BENCH_SCALE", scale)
        assert bench_scale_from_env() == scale

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "enormous")
        with pytest.raises(ExperimentError):
            bench_scale_from_env()
