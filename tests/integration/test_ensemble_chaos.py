"""Chaos test: SIGKILL an ensemble mid-flight, resume, compare bytes.

The durability contract of :mod:`repro.ensemble`: a hard kill at any
moment loses at most the in-flight shard.  Finished shards stay valid
(manifest checksums prove it), ``--resume`` recomputes only the gap,
and the final ``aggregates.json`` is byte-identical to a run that was
never interrupted.  This drives the real CLI in subprocesses — the
same recipe as the CI ``chaos-smoke`` job.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.ensemble.manifest import load_manifest

pytestmark = pytest.mark.slow

CAMPAIGN = "ag_corrupt_recover"


def _env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    env["PYTHONHASHSEED"] = "0"
    return env


def _ensemble_cmd(out_dir, *extra):
    return [
        sys.executable, "-m", "repro", "ensemble", "run",
        "--campaign", CAMPAIGN, "--scale", "smoke",
        "--runs", "600", "--shard-size", "50", "--seed", "11",
        "--workers", "2", "--out", out_dir, *extra,
    ]


def test_sigkill_mid_ensemble_resumes_byte_identically(tmp_path):
    reference = str(tmp_path / "reference")
    interrupted = str(tmp_path / "interrupted")

    subprocess.run(
        _ensemble_cmd(reference), env=_env(), check=True,
        capture_output=True, timeout=300,
    )

    # Kill the second, identical run mid-flight.  The reference run
    # takes a few seconds, so a kill shortly after the first shards
    # land leaves a genuinely partial directory.
    victim = subprocess.Popen(
        _ensemble_cmd(interrupted), env=_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 240.0
    killed = False
    while time.monotonic() < deadline:
        if victim.poll() is not None:
            break
        try:
            manifest = load_manifest(interrupted)
        except Exception:
            manifest = None
        if manifest is not None:
            done = sum(
                1 for s in manifest["shards"] if s["status"] == "done"
            )
            if 0 < done < len(manifest["shards"]):
                victim.send_signal(signal.SIGKILL)
                victim.wait(timeout=30)
                killed = True
                break
        time.sleep(0.05)
    if not killed:
        victim.wait(timeout=60)
        pytest.skip("ensemble finished before the kill could land")

    assert not os.path.exists(os.path.join(interrupted, "aggregates.json"))

    subprocess.run(
        _ensemble_cmd(interrupted, "--resume"), env=_env(), check=True,
        capture_output=True, timeout=300,
    )

    ref_bytes = open(os.path.join(reference, "aggregates.json"), "rb").read()
    int_bytes = open(os.path.join(interrupted, "aggregates.json"), "rb").read()
    assert ref_bytes == int_bytes

    aggregates = json.loads(ref_bytes)
    assert aggregates["aggregates"]["runs"] == 600
    assert aggregates["aggregates"]["failed_jobs"] == 0


def test_keyboard_interrupt_exits_cleanly_with_resume_hint(tmp_path):
    out = str(tmp_path / "interrupted")
    victim = subprocess.Popen(
        _ensemble_cmd(out), env=_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
        start_new_session=True,
    )
    time.sleep(2.0)
    os.killpg(victim.pid, signal.SIGINT)
    try:
        _, stderr = victim.communicate(timeout=60)
    except subprocess.TimeoutExpired:
        victim.kill()
        raise
    assert victim.returncode == 130
    assert b"interrupted" in stderr
    assert b"--resume" in stderr
