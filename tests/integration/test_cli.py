"""Integration tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.protocol == "tree"
        assert args.n == 100
        assert args.engine == "jump"

    def test_experiment_args(self):
        args = build_parser().parse_args(
            ["experiment", "figure1", "--scale", "smoke", "--seed", "9"]
        )
        assert args.experiment_id == "figure1"
        assert args.scale == "smoke"
        assert args.seed == 9


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out and "tree_scaling" in out

    def test_simulate_ring(self, capsys):
        code = main([
            "simulate", "--protocol", "ring", "--n", "30",
            "--start", "k-distant", "--k", "2", "--seed", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "correctly ranked    : True" in out
        assert "unique leader       : True" in out

    def test_simulate_budget_exhaustion_nonzero_exit(self, capsys):
        code = main([
            "simulate", "--protocol", "ag", "--n", "64",
            "--start", "pileup", "--max-interactions", "10",
        ])
        assert code == 1
        assert "silent              : False" in capsys.readouterr().out

    def test_simulate_solved_start(self, capsys):
        code = main([
            "simulate", "--protocol", "tree", "--n", "20",
            "--start", "solved",
        ])
        assert code == 0
        assert "interactions        : 0" in capsys.readouterr().out

    def test_experiment_markdown(self, capsys):
        code = main([
            "experiment", "figure2", "--scale", "smoke", "--markdown",
        ])
        assert code == 0
        assert capsys.readouterr().out.startswith("###")

    def test_unknown_experiment_exits_2(self, capsys):
        code = main(["experiment", "bogus"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "structure", ["figure1", "figure2", "graph", "tree", "ring"]
    )
    def test_render_structures(self, structure, capsys):
        assert main(["render", structure]) == 0
        assert capsys.readouterr().out.strip()

    def test_render_with_size(self, capsys):
        assert main(["render", "tree", "--size", "17"]) == 0
        assert "n=17" in capsys.readouterr().out

    def test_bench_quick_writes_json(self, capsys, tmp_path):
        code = main(["bench", "--quick", "--output-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "headline" in out and "speedup" in out
        written = list(tmp_path.glob("BENCH_*.json"))
        assert len(written) == 1

    def test_bench_missing_output_dir_fails_fast(self, capsys):
        code = main(["bench", "--quick", "--output-dir", "/nonexistent/dir"])
        err = capsys.readouterr().err
        assert code == 2
        assert "does not exist" in err

    def test_bench_quick_no_output(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(["bench", "--quick", "--output-dir", "-"])
        assert code == 0
        assert not list(tmp_path.glob("BENCH_*.json"))

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestScenarioCommand:
    def test_scenario_list(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "ag_corrupt_recover" in out
        assert "line_churn_storm" in out

    def test_scenario_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario"])

    def test_scenario_run_smoke(self, capsys):
        code = main([
            "scenario", "run", "ag_corrupt_recover",
            "--scale", "smoke", "--seed", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "recovered    : 100%" in out
        assert "Recovery after faults" in out
        assert "Phase timeline" in out

    def test_scenario_run_markdown_and_overrides(self, capsys):
        code = main([
            "scenario", "run", "line_churn_storm", "--scale", "smoke",
            "--repetitions", "1", "--workers", "1", "--markdown",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "### Recovery after faults" in out
        assert "repetitions  : 1" in out

    def test_scenario_run_matches_across_worker_counts(self, capsys):
        argv = ["scenario", "run", "tree_corrupt_recover",
                "--scale", "smoke", "--seed", "5"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--workers", "2"]) == 0
        pooled = capsys.readouterr().out
        assert serial == pooled

    def test_scenario_unknown_campaign_exits_2(self, capsys):
        code = main(["scenario", "run", "bogus"])
        assert code == 2
        assert "unknown campaign" in capsys.readouterr().err
