"""Meta-tests on the public API surface: exports, docstrings, signatures.

A production-quality library documents every public item; these tests
make that a checked invariant rather than a hope.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PUBLIC_MODULES = [
    "repro",
    "repro.core",
    "repro.core.configuration",
    "repro.core.engine",
    "repro.core.families",
    "repro.core.faults",
    "repro.core.fenwick",
    "repro.core.jump",
    "repro.core.protocol",
    "repro.core.sequential",
    "repro.configurations",
    "repro.configurations.generators",
    "repro.protocols",
    "repro.analysis",
    "repro.experiments",
    "repro.viz",
    "repro.cli",
]


class TestExports:
    def test_all_listed_exports_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name}"

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_submodules_have_all(self):
        for module_name in PUBLIC_MODULES:
            module = importlib.import_module(module_name)
            assert hasattr(module, "__all__") or module_name in (
                "repro.experiments",
                "repro.cli",
            ) or "__init__" not in (module.__file__ or ""), module_name


class TestDocstrings:
    def _public_members(self, module):
        names = getattr(module, "__all__", None)
        if names is None:
            return []
        members = []
        for name in names:
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                members.append((name, obj))
        return members

    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_module_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} has no module docstring"

    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_public_callables_documented(self, module_name):
        module = importlib.import_module(module_name)
        for name, obj in self._public_members(module):
            assert obj.__doc__, f"{module_name}.{name} lacks a docstring"
            if inspect.isclass(obj):
                for method_name, method in inspect.getmembers(
                    obj, inspect.isfunction
                ):
                    if method_name.startswith("_"):
                        continue
                    if method.__qualname__.split(".")[0] != obj.__name__:
                        continue  # inherited implementation
                    documented = method.__doc__ or any(
                        getattr(base, method_name, None) is not None
                        and getattr(base, method_name).__doc__
                        for base in obj.__mro__[1:]
                    )
                    assert documented, (
                        f"{module_name}.{name}.{method_name} lacks a docstring"
                    )

    def test_every_experiment_module_documented(self):
        package = importlib.import_module("repro.experiments")
        for info in pkgutil.iter_modules(package.__path__):
            module = importlib.import_module(
                f"repro.experiments.{info.name}"
            )
            assert module.__doc__, f"experiments.{info.name} undocumented"


class TestProtocolContracts:
    """Every shipped ranking protocol honours the shared conventions."""

    def _protocols(self):
        return [
            repro.AGProtocol(10),
            repro.RingOfTrapsProtocol(m=3),
            repro.TreeRankingProtocol(10, k=2),
            repro.LineOfTrapsProtocol(m=2),
        ]

    def test_state_space_shape(self):
        for protocol in self._protocols():
            assert protocol.num_states == (
                protocol.num_ranks + protocol.num_extra_states
            )
            assert protocol.num_ranks == protocol.num_agents

    def test_delta_total_on_state_space(self):
        """delta() must accept every ordered state pair without raising."""
        for protocol in self._protocols():
            for si in range(protocol.num_states):
                for sj in range(protocol.num_states):
                    out = protocol.delta(si, sj)
                    assert out is None or len(out) == 2

    def test_names_are_stable_identifiers(self):
        for protocol in self._protocols():
            assert protocol.name
            assert "\n" not in protocol.name
