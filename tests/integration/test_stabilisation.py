"""Cross-module integration: end-to-end stabilisation scenarios.

These tests tie together protocols, generators, engines, fault
injection and analysis — the workflows a library user actually runs.
"""

import pytest

from repro import (
    AGProtocol,
    LineOfTrapsProtocol,
    MetricRecorder,
    RingOfTrapsProtocol,
    TreeRankingProtocol,
    corrupt_agents,
    distance_from_solved,
    elect_leader,
    k_distant_configuration,
    random_configuration,
    run_protocol,
    solved_configuration,
)
from repro.analysis.potentials import global_excess, ring_weight


ALL_PROTOCOLS = [
    AGProtocol(20),
    RingOfTrapsProtocol(m=4),
    TreeRankingProtocol(20, k=4),
    LineOfTrapsProtocol(m=2),
]


class TestEveryProtocolEveryStart:
    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS, ids=lambda p: p.name)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_start(self, protocol, seed):
        start = random_configuration(protocol, seed=seed)
        result = run_protocol(protocol, start, seed=seed)
        assert result.silent
        assert protocol.is_ranked(result.final_configuration)

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS, ids=lambda p: p.name)
    def test_k_distant_start(self, protocol):
        start = k_distant_configuration(protocol, 3, seed=5)
        result = run_protocol(protocol, start, seed=5)
        assert result.silent
        assert protocol.is_ranked(result.final_configuration)

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS, ids=lambda p: p.name)
    def test_solved_start_is_a_fixed_point(self, protocol):
        result = run_protocol(protocol, solved_configuration(protocol), seed=0)
        assert result.silent and result.interactions == 0


class TestSelfStabilisationCycle:
    """Stabilise → corrupt → re-stabilise, repeatedly."""

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS, ids=lambda p: p.name)
    def test_three_fault_rounds(self, protocol):
        config = solved_configuration(protocol)
        for round_index in range(3):
            config = corrupt_agents(config, 5, seed=round_index)
            result = run_protocol(protocol, config, seed=round_index)
            assert result.silent
            assert protocol.is_ranked(result.final_configuration)
            config = result.final_configuration

    def test_recovery_cost_scales_with_corruption(self):
        """More corrupted agents ⟹ (weakly) longer recovery, on average."""
        protocol = RingOfTrapsProtocol(m=8)  # n = 72
        solved = solved_configuration(protocol)

        def median_recovery(num_corrupted):
            times = []
            for seed in range(5):
                start = corrupt_agents(solved, num_corrupted, seed=seed)
                times.append(
                    run_protocol(protocol, start, seed=seed).parallel_time
                )
            return sorted(times)[2]

        light = median_recovery(2)
        heavy = median_recovery(36)
        assert heavy > light

    def test_corruption_distance_bound(self):
        protocol = RingOfTrapsProtocol(m=6)
        start = corrupt_agents(solved_configuration(protocol), 7, seed=2)
        assert distance_from_solved(protocol, start) <= 7


class TestLeaderElectionEndToEnd:
    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS, ids=lambda p: p.name)
    def test_unique_leader_from_chaos(self, protocol):
        start = random_configuration(protocol, seed=9)
        outcome = elect_leader(protocol, start, seed=9)
        assert outcome.unique_leader


class TestPotentialsAlongRuns:
    def test_ring_weight_reaches_zero(self):
        protocol = RingOfTrapsProtocol(m=5)
        recorder = MetricRecorder(
            lambda counts: ring_weight(protocol, counts)
        )
        start = k_distant_configuration(protocol, 4, seed=3)
        run_protocol(protocol, start, seed=3, recorder=recorder)
        values = recorder.values
        assert values[0] >= 1
        assert values[-1] == 0
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_line_excess_reaches_zero(self):
        protocol = LineOfTrapsProtocol(m=2)
        recorder = MetricRecorder(
            lambda counts: global_excess(protocol, counts)
        )
        start = random_configuration(protocol, seed=6)
        run_protocol(protocol, start, seed=6, recorder=recorder)
        assert recorder.values[-1] == 0
