"""Integration tests: every registered experiment runs at smoke scale."""

import pytest

from repro.experiments import (
    REGISTRY,
    get_experiment,
    list_experiments,
    run_experiment,
)
from repro.experiments.base import ExperimentResult, pick
from repro.exceptions import ExperimentError

EXPECTED_IDS = {
    "figure1",
    "figure2",
    "summary",
    "ag_quadratic",
    "kdistant_vs_k",
    "kdistant_vs_n",
    "ring_arbitrary",
    "crossover",
    "line_scaling",
    "tree_scaling",
    "trap_drain",
    "tidy_time",
    "tree_paths",
    "reset_line",
    "engine_equivalence",
    "state_time_tradeoff",
    "reset_ablation",
    "scenario_ag_recovery",
    "scenario_tree_recovery",
    "scenario_line_churn",
    "scenario_epoch_ag",
    "scenario_epoch_tree",
}

# Cheap experiments run per-test below; the heavier ones are grouped.
FAST_IDS = ["figure1", "figure2", "kdistant_vs_k", "trap_drain", "tidy_time"]


class TestRegistry:
    def test_expected_experiments_registered(self):
        assert {e.experiment_id for e in list_experiments()} == EXPECTED_IDS

    def test_lookup(self):
        assert get_experiment("figure1").experiment_id == "figure1"

    def test_unknown_id(self):
        with pytest.raises(ExperimentError):
            get_experiment("nope")

    def test_descriptions_and_references_present(self):
        for experiment in REGISTRY.values():
            assert experiment.description
            assert experiment.paper_reference


class TestSmokeRuns:
    @pytest.mark.parametrize("experiment_id", sorted(FAST_IDS))
    def test_fast_experiments(self, experiment_id):
        result = run_experiment(experiment_id, scale="smoke", seed=1)
        assert isinstance(result, ExperimentResult)
        assert result.tables
        assert result.raw
        rendered = result.render()
        assert rendered.strip()
        assert result.to_markdown().startswith("###")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ExperimentError):
            run_experiment("figure1", scale="galactic")

    def test_workers_knob_is_bit_identical(self):
        # The registry threads `workers` into run_sweep; the results
        # must not depend on the pool size.
        serial = run_experiment("kdistant_vs_k", scale="smoke", seed=3)
        pooled = run_experiment(
            "kdistant_vs_k", scale="smoke", seed=3, workers=2
        )
        assert serial.raw == pooled.raw
        assert serial.render() == pooled.render()

    def test_scenario_experiment_smoke(self):
        result = run_experiment("scenario_ag_recovery", scale="smoke", seed=1)
        assert result.raw["recovered_fraction"] == 1.0
        assert len(result.tables) == 3


class TestFigureExperiments:
    def test_figure1_matches_paper(self):
        result = run_experiment("figure1", scale="smoke")
        assert result.raw["example_matches_paper"] is True
        assert result.raw["example_neighbours"] == [2, 3, 8]

    def test_figure2_matches_paper(self):
        result = run_experiment("figure2", scale="smoke")
        assert result.raw["figure2_exact_match"] is True
        assert "perfectly balanced tree, n=9" in result.raw["rendering"]


class TestScaleHelper:
    def test_pick(self):
        assert pick("smoke", 1, 2, 3) == 1
        assert pick("small", 1, 2, 3) == 2
        assert pick("paper", 1, 2, 3) == 3
        with pytest.raises(ExperimentError):
            pick("huge", 1, 2, 3)


class TestShapeClaims:
    """Smoke-scale sanity on the raw outputs (full checks in benchmarks)."""

    def test_ag_exponent_positive_and_superlinear(self):
        result = run_experiment("ag_quadratic", scale="smoke", seed=3)
        assert result.raw["exponent"] > 1.0

    def test_summary_lower_bound_floor(self):
        result = run_experiment("summary", scale="smoke", seed=3)
        assert result.raw["lower_bound_floor_holds"] is True
        assert all(row["ranked"] for row in result.raw["rows"])

    def test_engine_equivalence_medians_close(self):
        result = run_experiment("engine_equivalence", scale="smoke", seed=3)
        # smoke scale is noisy; just require same order of magnitude
        assert result.raw["max_median_deviation"] < 1.0
