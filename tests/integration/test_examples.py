"""Integration tests: every example script runs and produces its story."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args):
    """Run an example in a subprocess and return its stdout."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=240,
        check=False,
    )
    assert result.returncode == 0, (
        f"{name} failed:\n{result.stdout}\n{result.stderr}"
    )
    return result.stdout


class TestExamples:
    def test_examples_directory_contents(self):
        names = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert "quickstart.py" in names
        assert len(names) >= 4  # quickstart + ≥3 scenarios

    def test_quickstart(self):
        out = run_example("quickstart.py", "--n", "60", "--seed", "1")
        assert "correctly ranked: True" in out
        assert "unique leader   : True" in out

    def test_fault_campaign(self):
        out = run_example(
            "fault_campaign.py", "--n", "48", "--repetitions", "2",
            "--seed", "2",
        )
        assert "all recovered   : True" in out
        assert "Recovery after faults" in out
        assert "slowest recovery" in out

    def test_sensor_network_recovery(self):
        out = run_example(
            "sensor_network_recovery.py", "--m", "6", "--repetitions", "3"
        )
        assert "Recovery time after failure bursts" in out
        assert "Theorem 1" in out

    def test_epoch_adversary(self):
        out = run_example(
            "epoch_adversary.py", "--n", "40", "--repetitions", "2",
            "--seed", "4",
        )
        assert "all recovered   : True" in out
        assert "Recovery by scheduler epoch" in out
        assert "ranks starved@epoch1" in out

    def test_protocol_comparison(self):
        out = run_example(
            "protocol_comparison.py", "--repetitions", "2", "--seed", "3"
        )
        assert "AG (baseline" in out
        assert "tree of ranks" in out
        assert "O(n·log n)" in out

    def test_trap_dynamics(self):
        out = run_example(
            "trap_dynamics.py", "--m", "5", "--surplus", "3", "--seed", "1"
        )
        assert "silent" in out
        assert "MISMATCH" not in out  # closed form matches all schedules

    def test_reset_cascade(self):
        out = run_example("reset_cascade.py", "--n", "64", "--seed", "2")
        assert "RED epidemic" in out
        assert "SILENT" in out


class TestReportCommand:
    @pytest.mark.slow
    def test_report_generates_markdown(self, tmp_path):
        from repro.cli import main

        output = tmp_path / "EXPERIMENTS.md"
        code = main([
            "report", "--scale", "smoke", "--output", str(output),
        ])
        assert code == 0
        content = output.read_text()
        assert content.startswith("# EXPERIMENTS")
        assert "figure1" in content and "tree_scaling" in content
