"""Tests for the ASCII renderers."""

from repro import (
    LineOfTrapsProtocol,
    PerfectlyBalancedTree,
    RingOfTrapsProtocol,
    build_routing_graph,
    solved_configuration,
)
from repro.protocols.trap import TrapLayout
from repro.viz import (
    render_line,
    render_ring,
    render_routing_graph,
    render_trap,
    render_tree,
)


class TestRenderTree:
    def test_contains_every_node(self):
        text = render_tree(PerfectlyBalancedTree(9))
        for node in range(9):
            assert f"{node} " in text

    def test_indentation_tracks_levels(self):
        tree = PerfectlyBalancedTree(9)
        lines = render_tree(tree).splitlines()[1:]
        for line in lines:
            node = int(line.strip().split()[0])
            indent = (len(line) - len(line.lstrip())) // 2
            assert indent == tree.level(node)

    def test_occupancy_annotations(self):
        counts = [2] + [0] * 8
        text = render_tree(PerfectlyBalancedTree(9), counts)
        assert "[2 agent(s)]" in text


class TestRenderGraph:
    def test_all_vertices_listed(self):
        text = render_routing_graph(build_routing_graph(16))
        assert "16 lines" in text
        for v in range(1, 17):
            assert f"line {v:>3}:" in text

    def test_figure1_neighbours_shown(self):
        text = render_routing_graph(build_routing_graph(16))
        assert "l0=2" in text and "l1=3" in text and "l2=8" in text


class TestRenderTrapRingLine:
    def test_trap_rendering(self):
        trap = TrapLayout(base=0, size=4)
        assert render_trap(trap, [2, 1, 0, 12]) == "trap[2|1.*]"

    def test_ring_rendering(self):
        protocol = RingOfTrapsProtocol(m=3)
        counts = solved_configuration(protocol).counts_list()
        text = render_ring(protocol, counts)
        assert "m=3" in text
        assert text.count("a=") == 3

    def test_line_rendering(self):
        protocol = LineOfTrapsProtocol(m=2)
        counts = solved_configuration(protocol).counts_list()
        text = render_line(protocol, counts, line=1)
        assert "line 2" in text
        assert text.count("a=") == protocol.traps_per_line
        assert "X holds 0" in text


class TestRenderTrendTable:
    def test_empty_history_renders_placeholder(self):
        from repro.viz.ascii import render_trend_table

        text = render_trend_table([])
        assert "no bench history" in text
        assert "\n" not in text  # a single placeholder line, not a table

    def test_single_row_history_renders_without_drift(self):
        from repro.viz.ascii import render_trend_table

        rows = [{
            "timestamp": "20260808T000000", "case": "line-m4",
            "metric": "speedup", "ratio": "1.5",
            "events_per_sec": "100000.0",
            "reference_events_per_sec": "66000.0",
        }]
        text = render_trend_table(rows)
        assert "line-m4" in text
        assert " - " in text  # drift placeholder with one sample


class TestRenderEnsembleProgress:
    def test_bar_counts_and_eta(self):
        from repro.viz.ascii import render_ensemble_progress

        text = render_ensemble_progress(
            runs_done=5, total_runs=10, shards_done=1, shards_total=2,
            throughput=2.5, eta_s=2.0, width=10,
        )
        assert "[#####.....]" in text
        assert "5/10 runs" in text
        assert "shard 1/2" in text
        assert "2.5 runs/s" in text
        assert "eta 2s" in text
        assert "faults" not in text

    def test_unknown_rates_and_fault_tally(self):
        from repro.viz.ascii import render_ensemble_progress

        text = render_ensemble_progress(
            runs_done=0, total_runs=0, shards_done=0, shards_total=0,
            quarantined=2, retries=3,
        )
        assert "- runs/s" in text and "eta -" in text
        assert "3 retried, 2 quarantined" in text

    def test_eta_formatting_scales(self):
        from repro.viz.ascii import render_ensemble_progress

        assert "eta 1m30s" in render_ensemble_progress(
            1, 2, 1, 2, throughput=1.0, eta_s=90.0
        )
        assert "eta 2h05m" in render_ensemble_progress(
            1, 2, 1, 2, throughput=1.0, eta_s=7500.0
        )
