"""Tests for the ASCII renderers."""

from repro import (
    LineOfTrapsProtocol,
    PerfectlyBalancedTree,
    RingOfTrapsProtocol,
    build_routing_graph,
    solved_configuration,
)
from repro.protocols.trap import TrapLayout
from repro.viz import (
    render_line,
    render_ring,
    render_routing_graph,
    render_trap,
    render_tree,
)


class TestRenderTree:
    def test_contains_every_node(self):
        text = render_tree(PerfectlyBalancedTree(9))
        for node in range(9):
            assert f"{node} " in text

    def test_indentation_tracks_levels(self):
        tree = PerfectlyBalancedTree(9)
        lines = render_tree(tree).splitlines()[1:]
        for line in lines:
            node = int(line.strip().split()[0])
            indent = (len(line) - len(line.lstrip())) // 2
            assert indent == tree.level(node)

    def test_occupancy_annotations(self):
        counts = [2] + [0] * 8
        text = render_tree(PerfectlyBalancedTree(9), counts)
        assert "[2 agent(s)]" in text


class TestRenderGraph:
    def test_all_vertices_listed(self):
        text = render_routing_graph(build_routing_graph(16))
        assert "16 lines" in text
        for v in range(1, 17):
            assert f"line {v:>3}:" in text

    def test_figure1_neighbours_shown(self):
        text = render_routing_graph(build_routing_graph(16))
        assert "l0=2" in text and "l1=3" in text and "l2=8" in text


class TestRenderTrapRingLine:
    def test_trap_rendering(self):
        trap = TrapLayout(base=0, size=4)
        assert render_trap(trap, [2, 1, 0, 12]) == "trap[2|1.*]"

    def test_ring_rendering(self):
        protocol = RingOfTrapsProtocol(m=3)
        counts = solved_configuration(protocol).counts_list()
        text = render_ring(protocol, counts)
        assert "m=3" in text
        assert text.count("a=") == 3

    def test_line_rendering(self):
        protocol = LineOfTrapsProtocol(m=2)
        counts = solved_configuration(protocol).counts_list()
        text = render_line(protocol, counts, line=1)
        assert "line 2" in text
        assert text.count("a=") == protocol.traps_per_line
        assert "X holds 0" in text
