"""Property-based tests for perfectly balanced trees (§5)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import NodeKind, PerfectlyBalancedTree

sizes = st.integers(min_value=1, max_value=3000)


class TestTreeProperties:
    @given(sizes)
    @settings(max_examples=80)
    def test_preorder_numbering_is_contiguous(self, n):
        tree = PerfectlyBalancedTree(n)
        seen = set()
        stack = [0]
        while stack:
            node = stack.pop()
            seen.add(node)
            stack.extend(tree.children(node))
        assert seen == set(range(n))

    @given(sizes)
    @settings(max_examples=80)
    def test_height_bound(self, n):
        tree = PerfectlyBalancedTree(n)
        if n > 1:
            assert tree.height <= 2 * math.log2(n)
        else:
            assert tree.height == 0

    @given(sizes)
    @settings(max_examples=80)
    def test_levels_uniform(self, n):
        tree = PerfectlyBalancedTree(n)
        for level_nodes in tree.iter_levels():
            assert len(
                {(tree.kind(p), tree.subtree_size(p)) for p in level_nodes}
            ) <= 1

    @given(sizes)
    @settings(max_examples=80)
    def test_kind_matches_subtree_parity(self, n):
        tree = PerfectlyBalancedTree(n)
        for p in range(n):
            size = tree.subtree_size(p)
            kind = tree.kind(p)
            if size == 1:
                assert kind == NodeKind.LEAF
            elif size % 2 == 1:
                assert kind == NodeKind.BRANCHING
            else:
                assert kind == NodeKind.NON_BRANCHING

    @given(sizes)
    @settings(max_examples=80)
    def test_branching_splits_evenly(self, n):
        tree = PerfectlyBalancedTree(n)
        for p in range(n):
            if tree.kind(p) == NodeKind.BRANCHING and tree.subtree_size(p) > 1:
                left, right = tree.children(p)
                assert tree.subtree_size(left) == tree.subtree_size(right)
                assert tree.subtree_size(p) == 1 + 2 * tree.subtree_size(left)

    @given(sizes)
    @settings(max_examples=50)
    def test_all_leaves_at_full_depth(self, n):
        """Perfect balance ⟹ every root-to-leaf path has h+1 nodes."""
        tree = PerfectlyBalancedTree(n)
        for leaf in tree.leaves:
            assert tree.level(leaf) == tree.height
