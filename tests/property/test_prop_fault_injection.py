"""Property tests: external mutation never desyncs the fast-path engine.

The scenario engine corrupts a *running* engine's configuration through
``reset_configuration`` — the one seam where state changes outside the
protocol's own dynamics.  These tests drive an engine partway (through
the compiled-table fast loops), inject every fault kind, and verify the
fast-path invariants survive:

* the incremental weight cache ``W`` equals the weight re-summed from
  freshly rebuilt families;
* the compiled transition tables still produce a legal trajectory — the
  continued run reaches silence and a correctly ranked configuration;
* silence detection agrees with the protocol's own ``is_silent``.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AGProtocol,
    Configuration,
    JumpEngine,
    RingOfTrapsProtocol,
    SequentialEngine,
    TreeRankingProtocol,
    corrupt_agents,
    crash_and_replace,
    random_configuration,
)
from repro.core.batch import _MIN_BATCH, BatchEngine
from repro.core.faults import adversarial_swap


def _protocol(index):
    return [
        AGProtocol(12),
        RingOfTrapsProtocol(m=4),
        TreeRankingProtocol(13, k=3),
    ][index]


def _fault(configuration, kind, victims, seed):
    if kind == "corrupt":
        return corrupt_agents(configuration, victims, seed=seed)
    if kind == "crash":
        return crash_and_replace(
            configuration, victims, replacement_state=0, seed=seed
        )
    swap_with = configuration.num_states - 1
    return adversarial_swap(configuration, 0, swap_with)


class TestWeightCacheAfterMutation:
    @settings(max_examples=60, deadline=None)
    @given(
        protocol_index=st.integers(0, 2),
        warmup_events=st.integers(0, 120),
        victims=st.integers(0, 12),
        kind=st.sampled_from(["corrupt", "crash", "swap"]),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_jump_cached_weight_matches_recomputed(
        self, protocol_index, warmup_events, victims, kind, seed
    ):
        protocol = _protocol(protocol_index)
        start = random_configuration(protocol, seed=seed)
        engine = JumpEngine(protocol, start, np.random.default_rng(seed))
        # Warm the compiled tables and the incremental cache through the
        # recorder-free fast loop.
        engine.run(max_events=warmup_events)
        corrupted = _fault(
            Configuration(engine.counts), kind, victims, seed + 1
        )
        engine.reset_configuration(corrupted)
        assert engine.productive_weight == engine.recomputed_weight()
        assert engine.is_silent() == protocol.is_silent(corrupted)
        # The engine must remain runnable post-fault: the continued run
        # uses the already-compiled tables against the mutated counts.
        silent = engine.run(max_events=50_000)
        assert engine.productive_weight == engine.recomputed_weight()
        if silent:
            assert protocol.is_ranked(Configuration(engine.counts))

    @settings(max_examples=30, deadline=None)
    @given(
        warmup_events=st.integers(0, 60),
        victims=st.integers(0, 10),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_sequential_reset_matches_jump_invariants(
        self, warmup_events, victims, seed
    ):
        protocol = AGProtocol(10)
        start = random_configuration(protocol, seed=seed)
        engine = SequentialEngine(
            protocol, start, np.random.default_rng(seed)
        )
        engine.run(max_events=warmup_events)
        corrupted = corrupt_agents(
            Configuration(engine.counts), victims, seed=seed + 1
        )
        engine.reset_configuration(corrupted)
        assert engine.productive_weight == sum(
            family.weight for family in engine._families
        )
        assert sorted(engine.agent_states) == [
            s
            for s, count in enumerate(corrupted)
            for _ in range(count)
        ]
        assert engine.run(max_events=100_000)
        assert protocol.is_ranked(Configuration(engine.counts))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), victims=st.integers(1, 8))
    def test_post_fault_trajectory_matches_fresh_engine_distributionally(
        self, seed, victims
    ):
        # A reset engine and a fresh engine given the same generator
        # state must produce the *identical* trajectory: the compiled
        # tables carry no stale count information.
        protocol = AGProtocol(12)
        start = random_configuration(protocol, seed=seed)
        warm = JumpEngine(protocol, start, np.random.default_rng(seed))
        warm.run(max_events=40)
        corrupted = corrupt_agents(
            Configuration(warm.counts), victims, seed=seed + 1
        )
        warm.reset_configuration(corrupted)
        fresh = JumpEngine(
            protocol, corrupted, np.random.default_rng(seed + 2)
        )
        # Re-seed the warm engine's stream to match the fresh engine,
        # replaying the constructor's uniform-batch draw so both
        # generators sit at the same stream position.
        warm._rng = np.random.default_rng(seed + 2)
        warm._uniforms = warm._rng.random(len(warm._uniforms))
        warm._uniform_pos = 0
        warm._raws = []
        warm._raw_pos = 0
        base_interactions = warm.interactions
        base_events = warm.events
        warm_silent = warm.run(max_events=base_events + 10_000)
        fresh_silent = fresh.run(max_events=10_000)
        assert warm_silent == fresh_silent
        assert warm.counts == fresh.counts
        assert warm.interactions - base_interactions == fresh.interactions
        assert warm.events - base_events == fresh.events


class TestBatchResyncEquivalence:
    """The numpy batch kernel's ``reset_configuration`` is the same
    resync seam: aggregates and the frozen epoch rebuild from the
    mutated counts, and the continuation is exactly a fresh engine's."""

    @settings(max_examples=40, deadline=None)
    @given(
        protocol_index=st.integers(0, 2),
        warmup_events=st.integers(0, 120),
        victims=st.integers(0, 12),
        kind=st.sampled_from(["corrupt", "crash", "swap"]),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_batch_aggregates_survive_mutation(
        self, protocol_index, warmup_events, victims, kind, seed
    ):
        protocol = _protocol(protocol_index)
        start = random_configuration(protocol, seed=seed)
        engine = BatchEngine(protocol, start, np.random.default_rng(seed))
        engine.run(max_events=warmup_events)
        corrupted = _fault(
            Configuration(engine.counts), kind, victims, seed + 1
        )
        engine.reset_configuration(corrupted)
        engine._check_invariants()
        assert engine.is_silent() == protocol.is_silent(corrupted)
        silent = engine.run(max_events=50_000)
        engine._check_invariants()
        if silent:
            assert protocol.is_ranked(Configuration(engine.counts))

    @settings(max_examples=20, deadline=None)
    @given(
        protocol_index=st.integers(0, 2),
        seed=st.integers(0, 2**31 - 1),
        victims=st.integers(1, 8),
    )
    def test_post_fault_trajectory_matches_fresh_batch_engine(
        self, protocol_index, seed, victims
    ):
        # A reset batch engine and a fresh one given the same generator
        # state must produce the *identical* trajectory: the frozen
        # epoch carries no stale count information.  The batch
        # constructor consumes no randomness (buffers fill lazily), so
        # aligning the stream means re-seeding and dropping the warm
        # engine's buffered draws and adaptive batch sizing — the same
        # canonicalisation ``snapshot()`` performs.
        protocol = _protocol(protocol_index)
        start = random_configuration(protocol, seed=seed)
        warm = BatchEngine(protocol, start, np.random.default_rng(seed))
        warm.run(max_events=40)
        corrupted = corrupt_agents(
            Configuration(warm.counts), victims, seed=seed + 1
        )
        warm.reset_configuration(corrupted)
        fresh = BatchEngine(
            protocol, corrupted, np.random.default_rng(seed + 2)
        )
        warm._rng = np.random.default_rng(seed + 2)
        warm._lus = []
        warm._lu_pos = 0
        warm._raws = []
        warm._raw_pos = 0
        warm._lp_weight = -1
        warm._batch_size = _MIN_BATCH
        base_interactions = warm.interactions
        base_events = warm.events
        warm_silent = warm.run(max_events=base_events + 10_000)
        fresh_silent = fresh.run(max_events=10_000)
        assert warm_silent == fresh_silent
        assert warm.counts == fresh.counts
        assert warm.interactions - base_interactions == fresh.interactions
        assert warm.events - base_events == fresh.events


class TestSnapshotAfterChurn:
    """The checkpoint seam composes with the fault seam: a snapshot
    taken mid-scenario, after ``reset_configuration`` churn, restores
    and continues identically to the engine that took it."""

    @settings(max_examples=30, deadline=None)
    @given(
        protocol_index=st.integers(0, 2),
        warmup_events=st.integers(0, 100),
        victims=st.integers(1, 10),
        kind=st.sampled_from(["corrupt", "crash", "swap"]),
        tail_events=st.integers(1, 300),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_jump_snapshot_after_reset_configuration(
        self, protocol_index, warmup_events, victims, kind, tail_events, seed
    ):
        from repro import resume_engine

        protocol = _protocol(protocol_index)
        start = random_configuration(protocol, seed=seed)
        engine = JumpEngine(protocol, start, np.random.default_rng(seed))
        engine.run(max_events=warmup_events)
        corrupted = _fault(
            Configuration(engine.counts), kind, victims, seed + 1
        )
        engine.reset_configuration(corrupted)
        # Run a little *after* the fault so the snapshot captures
        # genuinely post-churn sampler state, then checkpoint.
        engine.run(max_events=engine.events + 20)
        snapshot = engine.snapshot()
        restored = resume_engine(protocol, snapshot)
        assert restored.counts == engine.counts
        assert restored.productive_weight == engine.productive_weight
        target = engine.events + tail_events
        live_silent = engine.run(max_events=target)
        restored_silent = restored.run(max_events=target)
        assert live_silent == restored_silent
        assert restored.counts == engine.counts
        assert restored.interactions == engine.interactions
        assert restored.events == engine.events

    @settings(max_examples=20, deadline=None)
    @given(
        warmup_events=st.integers(0, 60),
        victims=st.integers(1, 8),
        tail_events=st.integers(1, 200),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_sequential_snapshot_after_reset_configuration(
        self, warmup_events, victims, tail_events, seed
    ):
        from repro import resume_engine

        protocol = AGProtocol(10)
        start = random_configuration(protocol, seed=seed)
        engine = SequentialEngine(
            protocol, start, np.random.default_rng(seed)
        )
        engine.run(max_events=warmup_events)
        corrupted = corrupt_agents(
            Configuration(engine.counts), victims, seed=seed + 1
        )
        engine.reset_configuration(corrupted)
        engine.run(max_events=engine.events + 10)
        snapshot = engine.snapshot()
        restored = resume_engine(protocol, snapshot)
        target = engine.events + tail_events
        assert engine.run(max_events=target) == restored.run(
            max_events=target
        )
        assert restored.counts == engine.counts
        assert restored.agent_states == engine.agent_states
        assert restored.interactions == engine.interactions

    @settings(max_examples=25, deadline=None)
    @given(
        protocol_index=st.integers(0, 2),
        warmup_events=st.integers(0, 100),
        victims=st.integers(1, 10),
        kind=st.sampled_from(["corrupt", "crash", "swap"]),
        tail_events=st.integers(1, 300),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_batch_snapshot_after_reset_configuration(
        self, protocol_index, warmup_events, victims, kind, tail_events, seed
    ):
        from repro import resume_engine

        protocol = _protocol(protocol_index)
        start = random_configuration(protocol, seed=seed)
        engine = BatchEngine(protocol, start, np.random.default_rng(seed))
        engine.run(max_events=warmup_events)
        corrupted = _fault(
            Configuration(engine.counts), kind, victims, seed + 1
        )
        engine.reset_configuration(corrupted)
        engine.run(max_events=engine.events + 20)
        snapshot = engine.snapshot()
        restored = resume_engine(protocol, snapshot)
        assert restored.counts == engine.counts
        assert restored.productive_weight == engine.productive_weight
        target = engine.events + tail_events
        live_silent = engine.run(max_events=target)
        restored_silent = restored.run(max_events=target)
        assert live_silent == restored_silent
        assert restored.counts == engine.counts
        assert restored.interactions == engine.interactions
        assert restored.events == engine.events
