"""Property-based stabilisation tests: stable + silent + correct, always.

The paper's protocols are *stable* (correct with probability 1) and
*silent*.  Hypothesis drives them from arbitrary configurations and
random schedules; every run must end silent, correctly ranked, with a
unique leader — no exceptions, not just whp.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AGProtocol,
    Configuration,
    LineOfTrapsProtocol,
    RingOfTrapsProtocol,
    TreeRankingProtocol,
    count_leaders,
    run_protocol,
)


def arbitrary_configuration(num_states, num_agents):
    """Strategy: any placement of `num_agents` over `num_states`."""
    return st.lists(
        st.integers(0, num_states - 1),
        min_size=num_agents,
        max_size=num_agents,
    ).map(lambda states: Configuration.from_agents(states, num_states))


class TestAGAlwaysCorrect:
    @given(
        st.integers(3, 24).flatmap(
            lambda n: st.tuples(
                st.just(n),
                arbitrary_configuration(n, n),
                st.integers(0, 2**31),
            )
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_ag(self, case):
        n, start, seed = case
        protocol = AGProtocol(n)
        result = run_protocol(protocol, start, seed=seed)
        assert result.silent
        assert protocol.is_ranked(result.final_configuration)
        assert count_leaders(protocol, result.final_configuration) == 1


class TestRingAlwaysCorrect:
    @given(
        st.integers(2, 5).flatmap(
            lambda m: st.tuples(
                st.just(m),
                arbitrary_configuration(m * (m + 1), m * (m + 1)),
                st.integers(0, 2**31),
            )
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_ring(self, case):
        m, start, seed = case
        protocol = RingOfTrapsProtocol(m=m)
        result = run_protocol(protocol, start, seed=seed)
        assert result.silent
        assert protocol.is_ranked(result.final_configuration)


class TestTreeAlwaysCorrect:
    @given(
        st.tuples(st.integers(2, 20), st.integers(1, 4)).flatmap(
            lambda nk: st.tuples(
                st.just(nk),
                arbitrary_configuration(nk[0] + 2 * nk[1], nk[0]),
                st.integers(0, 2**31),
            )
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_tree(self, case):
        (n, k), start, seed = case
        protocol = TreeRankingProtocol(n, k=k)
        result = run_protocol(protocol, start, seed=seed)
        assert result.silent
        assert protocol.is_ranked(result.final_configuration)


class TestLineAlwaysCorrect:
    @given(
        arbitrary_configuration(73, 72),
        st.integers(0, 2**31),
    )
    @settings(max_examples=10, deadline=None)
    def test_line_m2(self, start, seed):
        protocol = LineOfTrapsProtocol(m=2)
        result = run_protocol(protocol, start, seed=seed)
        assert result.silent
        assert protocol.is_ranked(result.final_configuration)


class TestConservation:
    """Population size is conserved by every transition of every protocol."""

    @given(
        st.sampled_from(["ag", "ring", "tree", "line"]),
        st.integers(0, 2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_agent_count_constant(self, which, seed):
        protocol = {
            "ag": lambda: AGProtocol(10),
            "ring": lambda: RingOfTrapsProtocol(m=3),
            "tree": lambda: TreeRankingProtocol(10, k=2),
            "line": lambda: LineOfTrapsProtocol(m=2),
        }[which]()
        for si in range(protocol.num_states):
            for sj in range(protocol.num_states):
                out = protocol.delta(si, sj)
                if out is None:
                    continue
                # two agents in, two agents out
                assert len(out) == 2
                assert all(0 <= s < protocol.num_states for s in out)
