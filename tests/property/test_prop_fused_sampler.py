"""Property tests for the fused cross-family sampler.

Three invariant groups:

* the fused index's total weight equals the sum of the per-family
  weights recomputed from scratch — after arbitrary count mutations
  (driven through the engine seam) and after ``reset_configuration``;
* the weighted index realises *exactly* the rejection engine's step
  distribution: on small populations the per-pair masses enumerated
  agent-by-agent (with the 53-bit dyadic acceptance probabilities the
  rejection engine's float threshold implements) match the weighted
  index slot weights, pair by pair, as exact integers;
* sampling consistency: every pair the fused index produces is
  productive under ``delta`` and covered by exactly one family.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Configuration,
    JumpEngine,
    LineOfTrapsProtocol,
    ModifiedTreeProtocol,
    TreeRankingProtocol,
    WeightedScheduledEngine,
    random_configuration,
    run_protocol,
)
from repro.core.fused import (
    WEIGHT_DENOMINATOR,
    FusedIndex,
    WeightedFusedIndex,
    dyadic_weight_numerator,
)
from repro.core.scheduler import ScheduledEngine, try_weighted_engine
from repro.scenarios.schedulers import ClusteredScheduler, StateBiasedScheduler


def _multi_family_protocols():
    return [
        TreeRankingProtocol(13, k=3),
        ModifiedTreeProtocol(13, k=3),
        LineOfTrapsProtocol(m=2),
    ]


def _fresh_weight(protocol, counts):
    return sum(f.weight for f in protocol.build_families(counts))


class TestFusedIndexWeightInvariant:
    @pytest.mark.parametrize(
        "protocol", _multi_family_protocols(), ids=lambda p: p.name
    )
    def test_fused_total_equals_family_sum_after_runs(self, protocol):
        """The fused general loop never desyncs the flat index."""
        for seed in range(3):
            start = random_configuration(
                protocol, seed=seed, include_extras=True
            )
            engine = JumpEngine(
                protocol, start, np.random.default_rng(seed)
            )
            for _ in range(6):
                engine.run(max_events=engine.events + 200)
                assert engine.productive_weight == _fresh_weight(
                    protocol, engine.counts
                )
                assert engine._fused.total == engine.productive_weight
                if engine.is_silent():
                    break

    @given(
        moves=st.lists(
            st.tuples(st.integers(0, 18), st.integers(0, 18)),
            min_size=1,
            max_size=60,
        ),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_fused_total_tracks_arbitrary_count_mutations(self, moves, seed):
        """Moving agents between arbitrary states keeps the index exact."""
        protocol = TreeRankingProtocol(13, k=3)
        counts = random_configuration(
            protocol, seed=seed, include_extras=True
        ).counts_list()
        fused = FusedIndex(
            protocol.build_families(counts), protocol.num_states, counts
        )
        for source, destination in moves:
            if counts[source] == 0 or source == destination:
                continue
            fused.apply_count_change(source, counts[source], counts[source] - 1)
            counts[source] -= 1
            fused.apply_count_change(
                destination, counts[destination], counts[destination] + 1
            )
            counts[destination] += 1
            assert fused.total == _fresh_weight(protocol, counts)

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_reset_configuration_resyncs_fused_index(self, seed):
        protocol = TreeRankingProtocol(13, k=3)
        engine = JumpEngine(
            protocol,
            random_configuration(protocol, seed=seed, include_extras=True),
            np.random.default_rng(seed),
        )
        engine.run(max_events=150)
        rng = np.random.default_rng(seed + 1)
        scrambled = rng.multinomial(
            protocol.num_agents,
            [1 / protocol.num_states] * protocol.num_states,
        ).tolist()
        engine.reset_configuration(scrambled)
        assert engine.productive_weight == _fresh_weight(protocol, scrambled)
        # The engine must remain runnable with the recompiled index.
        engine.run(max_events=engine.events + 200)
        assert engine.productive_weight == _fresh_weight(
            protocol, engine.counts
        )

    @pytest.mark.parametrize(
        "protocol", _multi_family_protocols(), ids=lambda p: p.name
    )
    def test_sampled_pairs_are_productive(self, protocol):
        """Every fused draw must be a productive pair under delta."""
        start = random_configuration(protocol, seed=5, include_extras=True)
        engine = JumpEngine(protocol, start, np.random.default_rng(5))
        for _ in range(300):
            weight = engine.productive_weight
            if weight == 0:
                break
            si, sj = engine._fused.sample(engine.rand_below)
            assert protocol.delta(si, sj) is not None
            assert engine.counts[si] >= (2 if si == sj else 1)
            if si != sj:
                assert engine.counts[sj] >= 1
            engine.step()


def _pair_mass_from_rejection_model(protocol, counts, scheduler):
    """Per-pair step mass enumerated the rejection engine's way.

    For every ordered pair of *distinct agents* (enumerated through the
    counts), a draw is accepted with the dyadic probability
    ``ceil(pair_weight·2⁵³)/2⁵³``.  Returns (productive pair masses,
    total mass over all pairs) as exact integers scaled by ``2⁵³``.
    """
    productive = {}
    total = 0
    for si in range(protocol.num_states):
        if counts[si] == 0:
            continue
        for sj in range(protocol.num_states):
            pairs = counts[si] * (
                counts[sj] - 1 if si == sj else counts[sj]
            )
            if pairs == 0:
                continue
            mass = pairs * dyadic_weight_numerator(
                scheduler.pair_weight(si, sj)
            )
            total += mass
            if protocol.delta(si, sj) is not None:
                productive[(si, sj)] = mass
    return productive, total


class TestWeightedIndexMatchesRejectionDistribution:
    @pytest.mark.parametrize(
        "make_scheduler",
        [
            lambda p: StateBiasedScheduler(
                [1.0] * p.num_ranks + [0.3] * p.num_extra_states
            ),
            lambda p: StateBiasedScheduler(
                [0.7] * p.num_ranks + [0.05] * p.num_extra_states
            ),
            lambda p: ClusteredScheduler(p.num_states, 3, across=0.05),
        ],
        ids=["biased-0.3", "biased-0.05", "clustered"],
    )
    @pytest.mark.parametrize("seed", [0, 3, 9])
    def test_exhaustive_pair_masses_match(self, make_scheduler, seed):
        """Weighted index ≡ rejection model, pair by pair, exactly."""
        protocol = TreeRankingProtocol(9, k=2)
        counts = random_configuration(
            protocol, seed=seed, include_extras=True
        ).counts_list()
        scheduler = make_scheduler(protocol)
        engine = WeightedScheduledEngine(
            protocol,
            Configuration(counts),
            np.random.default_rng(seed),
            scheduler,
        )
        expected, expected_total = _pair_mass_from_rejection_model(
            protocol, counts, scheduler
        )
        assert engine.total_mass() == expected_total
        assert engine.productive_weight == sum(expected.values())
        # Pair-level check: decompose every slot's weight over the
        # pairs it covers (families and class blocks are disjoint) and
        # compare against the agent-enumerated masses, exactly.
        reconstructed = {}
        index = engine._index
        for slot in range(index.num_slots):
            kind = index.slot_kind[slot]
            payload = index.slot_payload[slot]
            if index.values[slot] == 0:
                continue
            if kind == 0:
                state, factor = payload
                pair_mass = factor * counts[state] * (counts[state] - 1)
                reconstructed[(state, state)] = (
                    reconstructed.get((state, state), 0) + pair_mass
                )
            elif kind == 1:
                for initiator in payload.initiators:
                    for responder in payload.responders:
                        pair_mass = (
                            payload.factor
                            * counts[initiator]
                            * counts[responder]
                        )
                        if pair_mass:
                            key = (initiator, responder)
                            reconstructed[key] = (
                                reconstructed.get(key, 0) + pair_mass
                            )
            else:
                if isinstance(payload, tuple):
                    line_payload, pos = payload
                    line = line_payload.line
                    row = line_payload.matrix[pos]
                    ci = line_payload.counts[pos]
                    key = (line[pos], line[pos])
                    pair_mass = row[pos] * ci * (ci - 1)
                    if pair_mass:
                        reconstructed[key] = (
                            reconstructed.get(key, 0) + pair_mass
                        )
                    for j in range(pos + 1, len(line)):
                        pair_mass = row[j] * ci * line_payload.counts[j]
                        if pair_mass:
                            key = (line[pos], line[j])
                            reconstructed[key] = (
                                reconstructed.get(key, 0) + pair_mass
                            )
                else:
                    factor = payload.factor
                    line = payload.line
                    for i, initiator in enumerate(line):
                        ci = payload.counts[i]
                        if ci == 0:
                            continue
                        pair_mass = factor * ci * (ci - 1)
                        if pair_mass:
                            key = (initiator, initiator)
                            reconstructed[key] = (
                                reconstructed.get(key, 0) + pair_mass
                            )
                        for j in range(i + 1, len(line)):
                            pair_mass = factor * ci * payload.counts[j]
                            if pair_mass:
                                key = (initiator, line[j])
                                reconstructed[key] = (
                                    reconstructed.get(key, 0) + pair_mass
                                )
        assert reconstructed == expected

    def test_trivial_weights_reduce_to_uniform_masses(self):
        """All-1.0 weights: every mass is count-pairs × 2⁵³ exactly."""
        protocol = TreeRankingProtocol(9, k=2)
        counts = random_configuration(
            protocol, seed=2, include_extras=True
        ).counts_list()
        scheduler = StateBiasedScheduler([1.0] * protocol.num_states)
        engine = WeightedScheduledEngine(
            protocol, Configuration(counts), np.random.default_rng(0),
            scheduler,
        )
        uniform = FusedIndex(
            protocol.build_families(counts), protocol.num_states, counts
        )
        assert engine.productive_weight == uniform.total * WEIGHT_DENOMINATOR
        n = protocol.num_agents
        assert engine.total_mass() == n * (n - 1) * WEIGHT_DENOMINATOR

    @given(
        warmup=st.integers(0, 80),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_masses_stay_exact_along_biased_runs(self, warmup, seed):
        """Incremental class sums / slots never drift from enumeration."""
        protocol = TreeRankingProtocol(9, k=2)
        scheduler = StateBiasedScheduler(
            [1.0] * protocol.num_ranks + [0.2] * protocol.num_extra_states
        )
        engine = WeightedScheduledEngine(
            protocol,
            random_configuration(protocol, seed=seed, include_extras=True),
            np.random.default_rng(seed),
            scheduler,
        )
        engine.run(max_events=warmup)
        expected, expected_total = _pair_mass_from_rejection_model(
            protocol, engine.counts, scheduler
        )
        assert engine.total_mass() == expected_total
        assert engine.productive_weight == sum(expected.values())

    def test_reset_configuration_resyncs_weighted_index(self):
        protocol = TreeRankingProtocol(9, k=2)
        scheduler = StateBiasedScheduler(
            [1.0] * protocol.num_ranks + [0.4] * protocol.num_extra_states
        )
        engine = WeightedScheduledEngine(
            protocol,
            random_configuration(protocol, seed=4, include_extras=True),
            np.random.default_rng(4),
            scheduler,
        )
        engine.run(max_events=50)
        scrambled = np.random.default_rng(5).multinomial(
            protocol.num_agents,
            [1 / protocol.num_states] * protocol.num_states,
        ).tolist()
        engine.reset_configuration(scrambled)
        expected, expected_total = _pair_mass_from_rejection_model(
            protocol, scrambled, scheduler
        )
        assert engine.total_mass() == expected_total
        assert engine.productive_weight == sum(expected.values())
        assert engine.run(max_events=100_000)


class TestWeightedEngineBehaviour:
    def test_weighted_matches_rejection_medians(self):
        """Both biased engines agree distributionally (small population)."""
        protocol = TreeRankingProtocol(9, k=2)
        scheduler = StateBiasedScheduler(
            [1.0] * protocol.num_ranks + [0.25] * protocol.num_extra_states
        )
        start = random_configuration(protocol, seed=0, include_extras=True)
        weighted, rejection = [], []
        for seed in range(30):
            w = run_protocol(protocol, start, seed=seed, scheduler=scheduler)
            r = run_protocol(
                protocol, start, seed=seed + 1000, engine="sequential",
                scheduler=scheduler,
            )
            assert w.engine_name == "weighted:state_biased"
            assert r.engine_name == "scheduled:state_biased"
            assert w.silent and r.silent
            weighted.append(w.parallel_time)
            rejection.append(r.parallel_time)
        ratio = np.median(weighted) / np.median(rejection)
        assert 0.6 < ratio < 1.7, f"median parallel-time ratio {ratio}"

    def test_weighted_engine_deterministic(self):
        protocol = LineOfTrapsProtocol(m=2)
        scheduler = StateBiasedScheduler(
            [1.0] * protocol.num_ranks + [0.5]
        )
        start = random_configuration(protocol, seed=6, include_extras=True)
        runs = [
            run_protocol(
                protocol, start, seed=11, scheduler=scheduler,
                max_events=5_000,
            )
            for _ in range(2)
        ]
        assert runs[0].final_configuration == runs[1].final_configuration
        assert runs[0].interactions == runs[1].interactions

    def test_unsupported_scheduler_falls_back_to_rejection(self):
        """A scheduler exceeding the class cap still runs (rejection)."""
        from repro import AGProtocol

        class AwkwardScheduler(StateBiasedScheduler):
            # Distinct per-state weights and no declared classes: the
            # dense derivation finds one class per state, blowing the
            # weighted index's class cap.
            def state_classes(self, num_states):
                return None

            def pair_weight(self, si, sj):
                return (
                    self._weights[si]
                    * self._weights[sj]
                )

        protocol = AGProtocol(70)
        scheduler = AwkwardScheduler(
            [1.0 - 0.005 * s for s in range(protocol.num_states)]
        )
        engine = try_weighted_engine(
            protocol,
            random_configuration(protocol, seed=0),
            np.random.default_rng(0),
            scheduler,
        )
        # 70 distinct classes exceed the cap → weighted path refuses.
        assert engine is None
        result = run_protocol(
            protocol,
            random_configuration(protocol, seed=0),
            seed=0,
            scheduler=scheduler,
            max_events=300,
        )
        assert result.engine_name.startswith("scheduled:")

    def test_weighted_engine_rejects_custom_families(self):
        """Opaque families cannot be weighted exactly → rejection."""
        from repro.core.families import SameStatePairs

        class Wrapped(SameStatePairs):
            pass

        class CustomFamilyProtocol(TreeRankingProtocol):
            def build_families(self, counts):
                return [
                    Wrapped(counts, list(range(self.num_ranks)))
                ] + super().build_families(counts)[1:]

        protocol = CustomFamilyProtocol(9, k=2)
        scheduler = StateBiasedScheduler([0.9] * protocol.num_states)
        engine = try_weighted_engine(
            protocol,
            random_configuration(protocol, seed=1),
            np.random.default_rng(1),
            scheduler,
        )
        assert engine is None

    def test_rejection_and_weighted_agree_under_scheduled_engine_model(self):
        """ScheduledEngine's empirical acceptance matches the dyadics.

        Spot-check the exactness premise itself: the probability that a
        53-bit uniform threshold falls below a float weight w is
        ceil(w·2⁵³)/2⁵³.
        """
        for weight in (0.05, 0.25, 1.0 / 3.0, 0.999, 1.0):
            numerator = dyadic_weight_numerator(weight)
            assert 1 <= numerator <= WEIGHT_DENOMINATOR
            # k/2⁵³ < w  ⇔  k < w·2⁵³  ⇔  k <= ceil(w·2⁵³) − 1
            below = numerator - 1
            assert below / WEIGHT_DENOMINATOR < weight
            assert numerator / WEIGHT_DENOMINATOR >= weight
