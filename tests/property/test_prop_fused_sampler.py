"""Property tests for the fused cross-family sampler.

Three invariant groups:

* the fused index's total weight equals the sum of the per-family
  weights recomputed from scratch — after arbitrary count mutations
  (driven through the engine seam) and after ``reset_configuration``;
* the weighted index realises *exactly* the rejection engine's step
  distribution: on small populations the per-pair masses enumerated
  agent-by-agent (with the 53-bit dyadic acceptance probabilities the
  rejection engine's float threshold implements) match the weighted
  index slot weights, pair by pair, as exact integers;
* the same exactness holds **across epoch boundaries**: an
  :class:`~repro.core.scheduler.EpochScheduler` run on the weighted
  engine switches to the next segment's step distribution at the
  boundary, hot-swapping precompiled indexes via ``resync`` — the
  swapped-in index must match the rejection model of the *active*
  segment pair by pair, before and after the switch;
* sampling consistency: every pair the fused index produces is
  productive under ``delta`` and covered by exactly one family.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Configuration,
    JumpEngine,
    LineOfTrapsProtocol,
    ModifiedTreeProtocol,
    RingOfTrapsProtocol,
    TreeRankingProtocol,
    WeightedScheduledEngine,
    random_configuration,
    run_protocol,
)
from repro.core.fused import (
    PRODUCT,
    PROPOSAL,
    SAME,
    TRIANGULAR,
    WEIGHT_DENOMINATOR,
    FusedIndex,
    dyadic_weight_numerator,
)
from repro.core.scheduler import (
    EpochBoundary,
    EpochScheduler,
    ScheduledEngine,
    try_weighted_engine,
)
from repro.scenarios.schedulers import ClusteredScheduler, StateBiasedScheduler


def _multi_family_protocols():
    return [
        TreeRankingProtocol(13, k=3),
        ModifiedTreeProtocol(13, k=3),
        LineOfTrapsProtocol(m=2),
    ]


def _fresh_weight(protocol, counts):
    return sum(f.weight for f in protocol.build_families(counts))


class TestFusedIndexWeightInvariant:
    @pytest.mark.parametrize(
        "protocol", _multi_family_protocols(), ids=lambda p: p.name
    )
    def test_fused_total_equals_family_sum_after_runs(self, protocol):
        """The fused general loop never desyncs the flat index."""
        for seed in range(3):
            start = random_configuration(
                protocol, seed=seed, include_extras=True
            )
            engine = JumpEngine(
                protocol, start, np.random.default_rng(seed)
            )
            for _ in range(6):
                engine.run(max_events=engine.events + 200)
                assert engine.productive_weight == _fresh_weight(
                    protocol, engine.counts
                )
                assert engine._fused.total == engine.productive_weight
                if engine.is_silent():
                    break

    @given(
        moves=st.lists(
            st.tuples(st.integers(0, 18), st.integers(0, 18)),
            min_size=1,
            max_size=60,
        ),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_fused_total_tracks_arbitrary_count_mutations(self, moves, seed):
        """Moving agents between arbitrary states keeps the index exact."""
        protocol = TreeRankingProtocol(13, k=3)
        counts = random_configuration(
            protocol, seed=seed, include_extras=True
        ).counts_list()
        fused = FusedIndex(
            protocol.build_families(counts), protocol.num_states, counts
        )
        for source, destination in moves:
            if counts[source] == 0 or source == destination:
                continue
            fused.apply_count_change(source, counts[source], counts[source] - 1)
            counts[source] -= 1
            fused.apply_count_change(
                destination, counts[destination], counts[destination] + 1
            )
            counts[destination] += 1
            assert fused.total == _fresh_weight(protocol, counts)

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_reset_configuration_resyncs_fused_index(self, seed):
        protocol = TreeRankingProtocol(13, k=3)
        engine = JumpEngine(
            protocol,
            random_configuration(protocol, seed=seed, include_extras=True),
            np.random.default_rng(seed),
        )
        engine.run(max_events=150)
        rng = np.random.default_rng(seed + 1)
        scrambled = rng.multinomial(
            protocol.num_agents,
            [1 / protocol.num_states] * protocol.num_states,
        ).tolist()
        engine.reset_configuration(scrambled)
        assert engine.productive_weight == _fresh_weight(protocol, scrambled)
        # The engine must remain runnable with the recompiled index.
        engine.run(max_events=engine.events + 200)
        assert engine.productive_weight == _fresh_weight(
            protocol, engine.counts
        )

    @pytest.mark.parametrize(
        "protocol", _multi_family_protocols(), ids=lambda p: p.name
    )
    def test_sampled_pairs_are_productive(self, protocol):
        """Every fused draw must be a productive pair under delta."""
        start = random_configuration(protocol, seed=5, include_extras=True)
        engine = JumpEngine(protocol, start, np.random.default_rng(5))
        for _ in range(300):
            weight = engine.productive_weight
            if weight == 0:
                break
            si, sj = engine._fused.sample(engine.rand_below)
            assert protocol.delta(si, sj) is not None
            assert engine.counts[si] >= (2 if si == sj else 1)
            if si != sj:
                assert engine.counts[sj] >= 1
            engine.step()


def _uniform_pair_masses(protocol, counts):
    """Productive ordered-pair masses enumerated straight from delta."""
    masses = {}
    for si in range(protocol.num_states):
        if counts[si] == 0:
            continue
        for sj in range(protocol.num_states):
            pairs = counts[si] * (
                counts[sj] - 1 if si == sj else counts[sj]
            )
            if pairs and protocol.delta(si, sj) is not None:
                masses[(si, sj)] = pairs
    return masses


def _reconstruct_hybrid_masses(index, counts):
    """Decompose a hybrid FusedIndex into per-pair masses, exactly.

    Pooled same-state mass comes from the proposal pool's member lists,
    tree-mode mass from the per-slot values, composite mass from the
    payload structure — together they must recover the identical step
    distribution the pure-Fenwick layout realises, whatever the current
    pool partition is.  Pool bookkeeping invariants are asserted on the
    way (member list lengths match the counts, the acceptance bound
    covers every member).
    """
    masses = {}

    def add(key, mass):
        if mass:
            masses[key] = masses.get(key, 0) + mass

    pool = index.pool
    for slot in range(index.num_slots):
        kind = index.slot_kind[slot]
        payload = index.slot_payload[slot]
        if kind == PROPOSAL:
            assert index.values[slot] == payload.weight
            total_members = 0
            for state in payload.states:
                plist = payload.positions[state]
                if plist is None:
                    continue
                count = counts[state]
                assert len(plist) == count
                assert count <= payload.mhat
                total_members += count
                add((state, state), count * (count - 1))
            assert total_members == len(payload.agents)
            assert len(payload.agents) == len(payload.where)
            for pos, state in enumerate(payload.agents):
                assert payload.positions[state][payload.where[pos]] == pos
        elif kind == SAME:
            state = payload
            if pool is not None and pool.positions[state] is not None:
                assert index.values[slot] == 0
            else:
                expected = counts[state] * (counts[state] - 1)
                assert index.values[slot] == expected
                add((state, state), expected)
        elif kind == PRODUCT:
            assert payload.init_total == sum(
                counts[s] for s in payload.initiators
            )
            assert payload.resp_total == sum(
                counts[s] for s in payload.responders
            )
            for initiator in payload.initiators:
                for responder in payload.responders:
                    add(
                        (initiator, responder),
                        counts[initiator] * counts[responder],
                    )
        elif kind == TRIANGULAR:
            line = payload.line
            for i, initiator in enumerate(line):
                ci = counts[initiator]
                if ci == 0:
                    continue
                add((initiator, initiator), ci * (ci - 1))
                for j in range(i + 1, len(line)):
                    add((initiator, line[j]), ci * counts[line[j]])
    return masses


def _reconstruct_pair_masses(index, counts):
    """Decompose a weighted index's slot weights into per-pair masses.

    Families and class blocks are disjoint, so summing each slot's
    weight over the ordered pairs it covers recovers the index's whole
    step distribution as exact integers.
    """
    reconstructed = {}

    def add(key, mass):
        if mass:
            reconstructed[key] = reconstructed.get(key, 0) + mass

    for slot in range(index.num_slots):
        kind = index.slot_kind[slot]
        payload = index.slot_payload[slot]
        if index.values[slot] == 0:
            continue
        if kind == 0:  # same-state
            state, factor = payload
            add((state, state), factor * counts[state] * (counts[state] - 1))
        elif kind == 1:  # product block
            for initiator in payload.initiators:
                for responder in payload.responders:
                    add(
                        (initiator, responder),
                        payload.factor * counts[initiator] * counts[responder],
                    )
        elif isinstance(payload, tuple):  # weighted per-position line
            line_payload, pos = payload
            line = line_payload.line
            row = line_payload.matrix[pos]
            ci = line_payload.counts[pos]
            add((line[pos], line[pos]), row[pos] * ci * (ci - 1))
            for j in range(pos + 1, len(line)):
                add((line[pos], line[j]), row[j] * ci * line_payload.counts[j])
        else:  # class-uniform triangular line
            factor = payload.factor
            line = payload.line
            for i, initiator in enumerate(line):
                ci = payload.counts[i]
                if ci == 0:
                    continue
                add((initiator, initiator), factor * ci * (ci - 1))
                for j in range(i + 1, len(line)):
                    add((initiator, line[j]), factor * ci * payload.counts[j])
    return reconstructed


def _pair_mass_from_rejection_model(protocol, counts, scheduler):
    """Per-pair step mass enumerated the rejection engine's way.

    For every ordered pair of *distinct agents* (enumerated through the
    counts), a draw is accepted with the dyadic probability
    ``ceil(pair_weight·2⁵³)/2⁵³``.  Returns (productive pair masses,
    total mass over all pairs) as exact integers scaled by ``2⁵³``.
    """
    productive = {}
    total = 0
    for si in range(protocol.num_states):
        if counts[si] == 0:
            continue
        for sj in range(protocol.num_states):
            pairs = counts[si] * (
                counts[sj] - 1 if si == sj else counts[sj]
            )
            if pairs == 0:
                continue
            mass = pairs * dyadic_weight_numerator(
                scheduler.pair_weight(si, sj)
            )
            total += mass
            if protocol.delta(si, sj) is not None:
                productive[(si, sj)] = mass
    return productive, total


class TestHybridSamplerExactness:
    """The hybrid proposal/Fenwick split ≡ the pure-Fenwick layout.

    Any pool partition must realise the identical step distribution —
    verified by exhaustively decomposing the hybrid index (pool member
    lists + tree values + composites) into per-pair masses and
    comparing against a straight enumeration of ``delta``'s productive
    support, as exact integers.
    """

    @pytest.mark.parametrize(
        "protocol",
        [LineOfTrapsProtocol(m=2), RingOfTrapsProtocol(m=8)],
        ids=lambda p: p.name,
    )
    @pytest.mark.parametrize("seed", [0, 4, 11])
    def test_hybrid_masses_match_delta_enumeration(self, protocol, seed):
        start = random_configuration(protocol, seed=seed, include_extras=True)
        counts = start.counts_list()
        fused = FusedIndex(
            protocol.build_families(counts), protocol.num_states, counts
        )
        expected = _uniform_pair_masses(protocol, counts)
        assert _reconstruct_hybrid_masses(fused, counts) == expected
        assert fused.total == sum(expected.values())

    @pytest.mark.parametrize(
        "protocol",
        [LineOfTrapsProtocol(m=2), RingOfTrapsProtocol(m=8)],
        ids=lambda p: p.name,
    )
    def test_hybrid_stays_exact_along_runs_and_reclassification(
        self, protocol
    ):
        """Chunked runs + forced reclassifications never desync the pool."""
        start = random_configuration(protocol, seed=3, include_extras=True)
        engine = JumpEngine(protocol, start, np.random.default_rng(3))
        for _ in range(8):
            engine.run(max_events=engine.events + 400)
            expected = _uniform_pair_masses(protocol, engine.counts)
            fused = engine._fused
            assert _reconstruct_hybrid_masses(fused, engine.counts) == expected
            assert engine.productive_weight == sum(expected.values())
            # Reclassification moves mass between the pool and the tree
            # but must not change the distribution (or the total).
            before = engine.productive_weight
            fused.reclassify(engine.counts)
            assert fused.total == before
            assert (
                _reconstruct_hybrid_masses(fused, engine.counts) == expected
            )
            if engine.is_silent():
                break

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_hybrid_exact_across_fault_resync(self, seed):
        """reset_configuration (the resync seam) reclassifies exactly."""
        protocol = LineOfTrapsProtocol(m=2)
        engine = JumpEngine(
            protocol,
            random_configuration(protocol, seed=seed, include_extras=True),
            np.random.default_rng(seed),
        )
        engine.run(max_events=300)
        scrambled = np.random.default_rng(seed + 1).multinomial(
            protocol.num_agents,
            [1 / protocol.num_states] * protocol.num_states,
        ).tolist()
        engine.reset_configuration(scrambled)
        expected = _uniform_pair_masses(protocol, scrambled)
        assert (
            _reconstruct_hybrid_masses(engine._fused, scrambled) == expected
        )
        assert engine.productive_weight == sum(expected.values())
        # The engine must keep running exactly on the resynced hybrid.
        engine.run(max_events=engine.events + 500)
        expected = _uniform_pair_masses(protocol, engine.counts)
        assert (
            _reconstruct_hybrid_masses(engine._fused, engine.counts)
            == expected
        )

    def test_fast_loop_trajectory_matches_step_driven(self):
        """The sprint/transfer fast paths apply exactly one transition
        per geometric skip — regression test for a fall-through that
        double-applied pool-to-pool transfers (interactions would halve
        relative to the step-driven generic path)."""
        protocol = LineOfTrapsProtocol(m=2)
        start = random_configuration(protocol, seed=2, include_extras=True)
        fast_interactions, step_interactions = [], []
        for seed in range(30):
            engine = JumpEngine(protocol, start, np.random.default_rng(seed))
            assert engine.run()
            fast_interactions.append(engine.interactions)
            engine = JumpEngine(
                protocol, start, np.random.default_rng(seed + 700)
            )
            while engine.step() is not None:
                pass
            step_interactions.append(engine.interactions)
        ratio = np.median(fast_interactions) / np.median(step_interactions)
        assert 0.7 < ratio < 1.45, f"median interactions ratio {ratio}"

    def test_sampled_pairs_follow_slot_weights(self):
        """Pool draws land on weighted members only, ∝ c(c−1) support."""
        protocol = LineOfTrapsProtocol(m=2)
        start = random_configuration(protocol, seed=1, include_extras=True)
        engine = JumpEngine(protocol, start, np.random.default_rng(1))
        fused = engine._fused
        for _ in range(300):
            if engine.is_silent():
                break
            si, sj = fused.sample(engine.rand_below)
            assert protocol.delta(si, sj) is not None
            assert engine.counts[si] >= (2 if si == sj else 1)
            engine.step()


class TestThinnedSegmentExactness:
    """The thinned (rejection-on-jump-clock) realisation stays exact."""

    def _many_class_scheduler(self, protocol):
        # >= 8 distinct high weights: routed to the thinned realisation.
        return StateBiasedScheduler(
            [0.80 + 0.02 * (s % 9) for s in range(protocol.num_states)]
        )

    def test_routing_picks_the_thinned_mode(self):
        from repro.core.scheduler import EpochBoundary, EpochScheduler

        protocol = TreeRankingProtocol(9, k=2)
        biased = StateBiasedScheduler(
            [1.0] * protocol.num_ranks + [0.2] * protocol.num_extra_states
        )
        many = self._many_class_scheduler(protocol)
        timeline = EpochScheduler([
            (EpochBoundary(kind="events", value=30), biased),
            (None, many),
        ])
        engine = WeightedScheduledEngine(
            protocol,
            random_configuration(protocol, seed=0, include_extras=True),
            np.random.default_rng(0),
            timeline,
        )
        assert engine._thinned == [False, True]
        assert 0.0 < engine.acceptance_estimates[0] < 1.0

    def test_scalar_many_class_high_acceptance_falls_back_to_rejection(self):
        protocol = TreeRankingProtocol(13, k=3)
        weights = [0.80 + 0.01 * (s % 20) for s in range(protocol.num_states)]
        result = run_protocol(
            protocol,
            random_configuration(protocol, seed=2, include_extras=True),
            seed=2,
            scheduler=StateBiasedScheduler(weights),
            max_events=500,
        )
        assert result.engine_name.startswith("scheduled:")

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_thinned_runs_keep_exact_masses(self, seed):
        """After thinned chunks the weighted index still matches the
        rejection model, pair by pair (flat updates + lazy tree)."""
        protocol = TreeRankingProtocol(9, k=2)
        scheduler = self._many_class_scheduler(protocol)
        engine = WeightedScheduledEngine(
            protocol,
            random_configuration(protocol, seed=seed, include_extras=True),
            np.random.default_rng(seed),
            scheduler,
        )
        assert engine._thinned == [True]
        engine.run(max_events=120)
        expected, expected_total = _pair_mass_from_rejection_model(
            protocol, engine.counts, scheduler
        )
        assert engine.total_mass() == expected_total
        assert engine.productive_weight == sum(expected.values())
        assert (
            _reconstruct_pair_masses(engine._index, engine.counts) == expected
        )
        # The dirty tree must self-heal for step()-driven continuation.
        if not engine.is_silent():
            assert engine.step() is not None
            assert engine.productive_weight == sum(
                _pair_mass_from_rejection_model(
                    protocol, engine.counts, scheduler
                )[0].values()
            )

    def test_thinned_and_weighted_modes_agree_distributionally(self):
        from repro.core import scheduler as scheduler_module

        protocol = TreeRankingProtocol(9, k=2)
        scheduler = self._many_class_scheduler(protocol)
        start = random_configuration(protocol, seed=0, include_extras=True)
        thinned, weighted = [], []
        original = scheduler_module._THINNING_CLASSES
        try:
            for seed in range(30):
                engine = WeightedScheduledEngine(
                    protocol, start, np.random.default_rng(seed), scheduler
                )
                assert engine._thinned == [True]
                assert engine.run(max_events=10**6)
                thinned.append(engine.interactions)
                scheduler_module._THINNING_CLASSES = 10**9  # force weighted
                engine = WeightedScheduledEngine(
                    protocol, start, np.random.default_rng(seed + 500),
                    scheduler,
                )
                assert engine._thinned == [False]
                assert engine.run(max_events=10**6)
                weighted.append(engine.interactions)
                scheduler_module._THINNING_CLASSES = original
        finally:
            scheduler_module._THINNING_CLASSES = original
        ratio = np.median(thinned) / np.median(weighted)
        assert 0.5 < ratio < 2.0, f"median interactions ratio {ratio}"


class TestWeightedIndexMatchesRejectionDistribution:
    @pytest.mark.parametrize(
        "make_scheduler",
        [
            lambda p: StateBiasedScheduler(
                [1.0] * p.num_ranks + [0.3] * p.num_extra_states
            ),
            lambda p: StateBiasedScheduler(
                [0.7] * p.num_ranks + [0.05] * p.num_extra_states
            ),
            lambda p: ClusteredScheduler(p.num_states, 3, across=0.05),
        ],
        ids=["biased-0.3", "biased-0.05", "clustered"],
    )
    @pytest.mark.parametrize("seed", [0, 3, 9])
    def test_exhaustive_pair_masses_match(self, make_scheduler, seed):
        """Weighted index ≡ rejection model, pair by pair, exactly."""
        protocol = TreeRankingProtocol(9, k=2)
        counts = random_configuration(
            protocol, seed=seed, include_extras=True
        ).counts_list()
        scheduler = make_scheduler(protocol)
        engine = WeightedScheduledEngine(
            protocol,
            Configuration(counts),
            np.random.default_rng(seed),
            scheduler,
        )
        expected, expected_total = _pair_mass_from_rejection_model(
            protocol, counts, scheduler
        )
        assert engine.total_mass() == expected_total
        assert engine.productive_weight == sum(expected.values())
        # Pair-level check: decompose every slot's weight over the
        # pairs it covers (families and class blocks are disjoint) and
        # compare against the agent-enumerated masses, exactly.
        assert _reconstruct_pair_masses(engine._index, counts) == expected

    def test_trivial_weights_reduce_to_uniform_masses(self):
        """All-1.0 weights: every mass is count-pairs × 2⁵³ exactly."""
        protocol = TreeRankingProtocol(9, k=2)
        counts = random_configuration(
            protocol, seed=2, include_extras=True
        ).counts_list()
        scheduler = StateBiasedScheduler([1.0] * protocol.num_states)
        engine = WeightedScheduledEngine(
            protocol, Configuration(counts), np.random.default_rng(0),
            scheduler,
        )
        uniform = FusedIndex(
            protocol.build_families(counts), protocol.num_states, counts
        )
        assert engine.productive_weight == uniform.total * WEIGHT_DENOMINATOR
        n = protocol.num_agents
        assert engine.total_mass() == n * (n - 1) * WEIGHT_DENOMINATOR

    @given(
        warmup=st.integers(0, 80),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_masses_stay_exact_along_biased_runs(self, warmup, seed):
        """Incremental class sums / slots never drift from enumeration."""
        protocol = TreeRankingProtocol(9, k=2)
        scheduler = StateBiasedScheduler(
            [1.0] * protocol.num_ranks + [0.2] * protocol.num_extra_states
        )
        engine = WeightedScheduledEngine(
            protocol,
            random_configuration(protocol, seed=seed, include_extras=True),
            np.random.default_rng(seed),
            scheduler,
        )
        engine.run(max_events=warmup)
        expected, expected_total = _pair_mass_from_rejection_model(
            protocol, engine.counts, scheduler
        )
        assert engine.total_mass() == expected_total
        assert engine.productive_weight == sum(expected.values())

    def test_reset_configuration_resyncs_weighted_index(self):
        protocol = TreeRankingProtocol(9, k=2)
        scheduler = StateBiasedScheduler(
            [1.0] * protocol.num_ranks + [0.4] * protocol.num_extra_states
        )
        engine = WeightedScheduledEngine(
            protocol,
            random_configuration(protocol, seed=4, include_extras=True),
            np.random.default_rng(4),
            scheduler,
        )
        engine.run(max_events=50)
        scrambled = np.random.default_rng(5).multinomial(
            protocol.num_agents,
            [1 / protocol.num_states] * protocol.num_states,
        ).tolist()
        engine.reset_configuration(scrambled)
        expected, expected_total = _pair_mass_from_rejection_model(
            protocol, scrambled, scheduler
        )
        assert engine.total_mass() == expected_total
        assert engine.productive_weight == sum(expected.values())
        assert engine.run(max_events=100_000)


class TestWeightedEngineBehaviour:
    def test_weighted_matches_rejection_medians(self):
        """Both biased engines agree distributionally (small population)."""
        protocol = TreeRankingProtocol(9, k=2)
        scheduler = StateBiasedScheduler(
            [1.0] * protocol.num_ranks + [0.25] * protocol.num_extra_states
        )
        start = random_configuration(protocol, seed=0, include_extras=True)
        weighted, rejection = [], []
        for seed in range(30):
            w = run_protocol(protocol, start, seed=seed, scheduler=scheduler)
            r = run_protocol(
                protocol, start, seed=seed + 1000, engine="sequential",
                scheduler=scheduler,
            )
            assert w.engine_name == "weighted:state_biased"
            assert r.engine_name == "scheduled:state_biased"
            assert w.silent and r.silent
            weighted.append(w.parallel_time)
            rejection.append(r.parallel_time)
        ratio = np.median(weighted) / np.median(rejection)
        assert 0.6 < ratio < 1.7, f"median parallel-time ratio {ratio}"

    def test_weighted_engine_deterministic(self):
        protocol = LineOfTrapsProtocol(m=2)
        scheduler = StateBiasedScheduler(
            [1.0] * protocol.num_ranks + [0.5]
        )
        start = random_configuration(protocol, seed=6, include_extras=True)
        runs = [
            run_protocol(
                protocol, start, seed=11, scheduler=scheduler,
                max_events=5_000,
            )
            for _ in range(2)
        ]
        assert runs[0].final_configuration == runs[1].final_configuration
        assert runs[0].interactions == runs[1].interactions

    def test_unsupported_scheduler_falls_back_to_rejection(self):
        """A scheduler exceeding the class cap still runs (rejection)."""
        from repro import AGProtocol

        class AwkwardScheduler(StateBiasedScheduler):
            # Distinct per-state weights and no declared classes: the
            # dense derivation finds one class per state, blowing the
            # weighted index's class cap.
            def state_classes(self, num_states):
                return None

            def pair_weight(self, si, sj):
                return (
                    self._weights[si]
                    * self._weights[sj]
                )

        protocol = AGProtocol(70)
        scheduler = AwkwardScheduler(
            [1.0 - 0.005 * s for s in range(protocol.num_states)]
        )
        engine = try_weighted_engine(
            protocol,
            random_configuration(protocol, seed=0),
            np.random.default_rng(0),
            scheduler,
        )
        # 70 distinct classes exceed the cap → weighted path refuses.
        assert engine is None
        result = run_protocol(
            protocol,
            random_configuration(protocol, seed=0),
            seed=0,
            scheduler=scheduler,
            max_events=300,
        )
        assert result.engine_name.startswith("scheduled:")

    def test_weighted_engine_rejects_custom_families(self):
        """Opaque families cannot be weighted exactly → rejection."""
        from repro.core.families import SameStatePairs

        class Wrapped(SameStatePairs):
            pass

        class CustomFamilyProtocol(TreeRankingProtocol):
            def build_families(self, counts):
                return [
                    Wrapped(counts, list(range(self.num_ranks)))
                ] + super().build_families(counts)[1:]

        protocol = CustomFamilyProtocol(9, k=2)
        scheduler = StateBiasedScheduler([0.9] * protocol.num_states)
        engine = try_weighted_engine(
            protocol,
            random_configuration(protocol, seed=1),
            np.random.default_rng(1),
            scheduler,
        )
        assert engine is None

    def test_rejection_and_weighted_agree_under_scheduled_engine_model(self):
        """ScheduledEngine's empirical acceptance matches the dyadics.

        Spot-check the exactness premise itself: the probability that a
        53-bit uniform threshold falls below a float weight w is
        ceil(w·2⁵³)/2⁵³.
        """
        for weight in (0.05, 0.25, 1.0 / 3.0, 0.999, 1.0):
            numerator = dyadic_weight_numerator(weight)
            assert 1 <= numerator <= WEIGHT_DENOMINATOR
            # k/2⁵³ < w  ⇔  k < w·2⁵³  ⇔  k <= ceil(w·2⁵³) − 1
            below = numerator - 1
            assert below / WEIGHT_DENOMINATOR < weight
            assert numerator / WEIGHT_DENOMINATOR >= weight


def _epoch_timeline(protocol, boundary_events):
    """A two-segment timeline whose bias flips after `boundary_events`."""
    before = StateBiasedScheduler(
        [1.0] * protocol.num_ranks + [0.2] * protocol.num_extra_states
    )
    # Three clusters cut the reset line across class boundaries, so the
    # swapped-in index exercises the per-position weighted-line slots.
    after = ClusteredScheduler(protocol.num_states, 3, across=0.05)
    timeline = EpochScheduler([
        (EpochBoundary(kind="events", value=boundary_events), before),
        (None, after),
    ])
    return before, after, timeline


class TestEpochSchedulerExactness:
    """The weighted engine ≡ the rejection reference across boundaries."""

    @given(
        post=st.integers(1, 60),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_step_distribution_switches_exactly_at_boundary(self, post, seed):
        """Active masses match the active segment's rejection model.

        Before the boundary the engine's exact step distribution must
        be segment 1's; after crossing it (a hot-swap of precompiled
        indexes via ``resync``) it must be segment 2's — both verified
        by exhaustive agent-level enumeration, as exact integers.
        """
        protocol = TreeRankingProtocol(9, k=2)
        boundary = 40
        before, after, timeline = _epoch_timeline(protocol, boundary)
        engine = WeightedScheduledEngine(
            protocol,
            random_configuration(protocol, seed=seed, include_extras=True),
            np.random.default_rng(seed),
            timeline,
        )
        engine.run(max_events=boundary // 2)
        active = before if engine.epoch == 0 else after
        expected, expected_total = _pair_mass_from_rejection_model(
            protocol, engine.counts, active
        )
        assert engine.total_mass() == expected_total
        assert engine.productive_weight == sum(expected.values())
        assert (
            _reconstruct_pair_masses(engine._index, engine.counts) == expected
        )
        # Cross the boundary (unless the run silenced first).
        engine.run(max_events=boundary + post)
        if engine.events < boundary:
            assert engine.epoch == 0
            return
        assert engine.epoch == 1
        expected, expected_total = _pair_mass_from_rejection_model(
            protocol, engine.counts, after
        )
        assert engine.total_mass() == expected_total
        assert engine.productive_weight == sum(expected.values())
        assert (
            _reconstruct_pair_masses(engine._index, engine.counts) == expected
        )

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_hot_swapped_index_equals_fresh_compile(self, seed):
        """resync-on-swap produces the same index a fresh build would."""
        protocol = TreeRankingProtocol(9, k=2)
        _, after, timeline = _epoch_timeline(protocol, 30)
        engine = WeightedScheduledEngine(
            protocol,
            random_configuration(protocol, seed=seed, include_extras=True),
            np.random.default_rng(seed),
            timeline,
        )
        engine.run(max_events=45)
        if engine.epoch != 1:
            return
        fresh = WeightedScheduledEngine(
            protocol,
            Configuration(engine.counts),
            np.random.default_rng(0),
            after,
        )
        assert engine.productive_weight == fresh.productive_weight
        assert engine.total_mass() == fresh.total_mass()
        assert _reconstruct_pair_masses(
            engine._index, engine.counts
        ) == _reconstruct_pair_masses(fresh._index, engine.counts)

    def test_rejection_reference_swaps_at_the_same_boundary(self):
        """The rejection engine's active matrix flips at the boundary."""
        protocol = TreeRankingProtocol(9, k=2)
        before, after, timeline = _epoch_timeline(protocol, 40)
        engine = ScheduledEngine(
            protocol,
            random_configuration(protocol, seed=2, include_extras=True),
            np.random.default_rng(2),
            timeline,
        )
        engine.run(max_events=20)
        assert engine.epoch == 0
        assert np.array_equal(
            engine._weights, before.weight_matrix(protocol.num_states)
        )
        engine.run(max_events=60)
        if engine.events >= 40:
            assert engine.epoch == 1
            assert engine.current_scheduler is after
            assert np.array_equal(
                engine._weights, after.weight_matrix(protocol.num_states)
            )

    def test_fault_then_boundary_stays_exact(self):
        """reset_configuration mid-timeline composes with the hot swap."""
        protocol = TreeRankingProtocol(9, k=2)
        _, after, timeline = _epoch_timeline(protocol, 50)
        engine = WeightedScheduledEngine(
            protocol,
            random_configuration(protocol, seed=6, include_extras=True),
            np.random.default_rng(6),
            timeline,
        )
        engine.run(max_events=10)
        scrambled = np.random.default_rng(7).multinomial(
            protocol.num_agents,
            [1 / protocol.num_states] * protocol.num_states,
        ).tolist()
        engine.reset_configuration(scrambled)
        engine.run(max_events=80)
        if engine.epoch != 1:
            return
        expected, expected_total = _pair_mass_from_rejection_model(
            protocol, engine.counts, after
        )
        assert engine.total_mass() == expected_total
        assert engine.productive_weight == sum(expected.values())
        assert (
            _reconstruct_pair_masses(engine._index, engine.counts) == expected
        )

    def test_weighted_matches_rejection_medians_across_boundary(self):
        """Both engines agree distributionally under the same timeline.

        Times-to-silence on this timeline are heavy-tailed (the
        clustered segment occasionally wanders long), so the check uses
        a decent sample and generous bounds — the *exact* agreement is
        carried by the pair-mass enumeration tests above; this one only
        guards against gross distributional drift.
        """
        protocol = TreeRankingProtocol(9, k=2)
        start = random_configuration(protocol, seed=0, include_extras=True)
        weighted, rejection = [], []
        for seed in range(60):
            _, _, timeline = _epoch_timeline(protocol, 40)
            w = WeightedScheduledEngine(
                protocol, start, np.random.default_rng(seed), timeline
            )
            assert w.run(max_events=10**6)
            _, _, timeline = _epoch_timeline(protocol, 40)
            r = ScheduledEngine(
                protocol, start, np.random.default_rng(seed + 1000), timeline
            )
            assert r.run(max_events=10**6)
            weighted.append(w.interactions)
            rejection.append(r.interactions)
        ratio = np.median(weighted) / np.median(rejection)
        assert 0.35 < ratio < 2.8, f"median interactions ratio {ratio}"

    def test_unsupported_segment_sends_whole_timeline_to_rejection(self):
        """One uncompilable segment -> rejection runs the full timeline."""
        from repro import AGProtocol

        class Opaque(StateBiasedScheduler):
            def state_classes(self, num_states):
                return None

        protocol = AGProtocol(70)
        fine = StateBiasedScheduler([0.5] * protocol.num_states)
        awkward = Opaque([1.0 - 0.005 * s for s in range(protocol.num_states)])
        timeline = EpochScheduler([
            (EpochBoundary(kind="events", value=10), fine),
            (None, awkward),
        ])
        engine = try_weighted_engine(
            protocol,
            random_configuration(protocol, seed=0),
            np.random.default_rng(0),
            timeline,
        )
        assert engine is None
        result = run_protocol(
            protocol,
            random_configuration(protocol, seed=0),
            seed=0,
            scheduler=timeline,
            max_events=50,
        )
        assert result.engine_name.startswith("scheduled:epoch(")

    @pytest.mark.parametrize(
        "engine_cls", [WeightedScheduledEngine, ScheduledEngine],
        ids=["weighted", "rejection"],
    )
    def test_predicate_boundary_honours_check_every_on_both_engines(
        self, engine_cls
    ):
        """Predicate evaluation points are the check_every grid, on both
        engines — the window lives in the shared cursor, so neither the
        per-step rejection loop nor the chunked jump loop checks more
        often than the other."""
        protocol = TreeRankingProtocol(9, k=2)
        before, after, _ = _epoch_timeline(protocol, 1)
        holder = {}
        calls = []

        def predicate(counts):
            calls.append(holder["engine"].events)
            return False

        timeline = EpochScheduler([
            (
                EpochBoundary(
                    kind="predicate", predicate=predicate, check_every=25
                ),
                before,
            ),
            (None, after),
        ])
        engine = engine_cls(
            protocol,
            random_configuration(protocol, seed=3, include_extras=True),
            np.random.default_rng(3),
            timeline,
        )
        holder["engine"] = engine
        engine.run(max_events=100)
        assert engine.epoch == 0  # predicate never held
        assert calls and calls[0] == 0
        assert all(b - a >= 25 for a, b in zip(calls, calls[1:]))

    @pytest.mark.parametrize(
        "engine_cls", [WeightedScheduledEngine, ScheduledEngine],
        ids=["weighted", "rejection"],
    )
    def test_true_predicate_advances_immediately(self, engine_cls):
        protocol = TreeRankingProtocol(9, k=2)
        before, after, _ = _epoch_timeline(protocol, 1)
        timeline = EpochScheduler([
            (
                EpochBoundary(
                    kind="predicate",
                    predicate=lambda counts: True,
                    check_every=1024,
                ),
                before,
            ),
            (None, after),
        ])
        engine = engine_cls(
            protocol,
            random_configuration(protocol, seed=3, include_extras=True),
            np.random.default_rng(3),
            timeline,
        )
        engine.run(max_events=10)
        assert engine.epoch == 1
        assert engine.current_scheduler is after
