"""Property tests for the §4 line accounting (Lemmas 5, 6, 10)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import run_protocol
from repro.analysis.potentials import (
    LineVectors,
    line_deficit,
    line_excess_tokens,
    line_surplus,
    stabilise_line,
)
from repro.protocols.line import IsolatedLineProtocol


def vectors_strategy(max_traps=4, max_cap=3, max_load=5):
    @st.composite
    def build(draw):
        num_traps = draw(st.integers(1, max_traps))
        cap = draw(st.integers(1, max_cap))
        beta = tuple(
            draw(st.integers(0, max_load)) for __ in range(num_traps)
        )
        gamma = tuple(
            draw(st.integers(0, max_load)) for __ in range(num_traps)
        )
        return LineVectors(beta=beta, gamma=gamma,
                           inner_caps=(cap,) * num_traps)

    return build()


class TestClosedFormProperties:
    @given(vectors_strategy())
    @settings(max_examples=100)
    def test_conservation(self, vectors):
        """Agents in = agents kept + agents released."""
        final, surplus = stabilise_line(vectors)
        assert final.num_agents + surplus == vectors.num_agents

    @given(vectors_strategy())
    @settings(max_examples=100)
    def test_final_is_silent_shape(self, vectors):
        """The stabilised line has no overloads: β̄ ≤ cap, γ̄ ∈ {0,1}."""
        final, __ = stabilise_line(vectors)
        for b, g, cap in zip(final.beta, final.gamma, final.inner_caps):
            assert 0 <= b <= cap
            assert g in (0, 1)

    @given(vectors_strategy())
    @settings(max_examples=100)
    def test_stabilised_line_is_fixed_point(self, vectors):
        final, surplus = stabilise_line(vectors)
        again, more = stabilise_line(final)
        assert more == 0
        assert again == final

    @given(vectors_strategy())
    @settings(max_examples=100)
    def test_surplus_bounded_by_tokens(self, vectors):
        """s(C_l) <= r(C_l): releases are handled tokens (§4.2)."""
        assert line_surplus(vectors) <= line_excess_tokens(vectors)

    @given(vectors_strategy())
    @settings(max_examples=100)
    def test_deficit_nonnegative(self, vectors):
        assert line_deficit(vectors) >= 0

    @given(vectors_strategy(max_traps=3, max_cap=2, max_load=4))
    @settings(max_examples=25, deadline=None)
    def test_closed_form_matches_simulation(self, vectors):
        """Lemma 5: the final vectors and surplus are schedule-independent
        and equal the closed form — for *any* random schedule."""
        if vectors.num_agents < 2:
            return  # population protocols need two agents to interact
        protocol = IsolatedLineProtocol(
            num_traps=vectors.num_traps,
            inner_cap=vectors.inner_caps[0],
            num_agents=vectors.num_agents,
        )
        start = protocol.configuration_from_vectors(
            list(vectors.beta), list(vectors.gamma)
        )
        expected_final, expected_surplus = stabilise_line(vectors)
        result = run_protocol(protocol, start, seed=0)
        assert result.silent
        counts = result.final_configuration.counts_list()
        assert counts[protocol.release_state] == expected_surplus
        for a in range(1, vectors.num_traps + 1):
            trap = protocol.trap(a)
            assert counts[trap.gate] == expected_final.gamma[a - 1]
            assert (
                sum(counts[s] for s in trap.inner_states)
                == expected_final.beta[a - 1]
            )


class TestLemma6:
    @given(vectors_strategy(max_traps=3, max_cap=3, max_load=3))
    @settings(max_examples=100)
    def test_inserting_enough_agents_zeroes_the_deficit(self, vectors):
        """Lemma 6: min(d + cap, 2d) extra agents at the entrance gate
        make the line full (deficit 0)."""
        d = line_deficit(vectors)
        cap = vectors.inner_caps[0]
        extra = min(d + cap, 2 * d)
        gamma = list(vectors.gamma)
        gamma[-1] += extra  # entrance gate is the last trap
        boosted = LineVectors(
            beta=vectors.beta, gamma=tuple(gamma),
            inner_caps=vectors.inner_caps,
        )
        assert line_deficit(boosted) == 0
