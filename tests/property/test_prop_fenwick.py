"""Property-based tests for the Fenwick tree."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fenwick import FenwickTree

weights = st.lists(st.integers(min_value=0, max_value=100), min_size=1,
                   max_size=50)


class TestFenwickProperties:
    @given(weights)
    def test_total_is_sum(self, values):
        tree = FenwickTree.from_values(values)
        assert tree.total == sum(values)

    @given(weights)
    def test_prefix_sums_match_naive(self, values):
        tree = FenwickTree.from_values(values)
        for i in range(len(values) + 1):
            assert tree.prefix_sum(i) == sum(values[:i])

    @given(weights)
    def test_find_inverts_prefix_sum(self, values):
        tree = FenwickTree.from_values(values)
        for target in range(tree.total):
            slot = tree.find(target)
            assert values[slot] > 0
            assert tree.prefix_sum(slot) <= target < tree.prefix_sum(slot + 1)

    @given(
        weights,
        st.lists(
            st.tuples(st.integers(0, 49), st.integers(0, 100)), max_size=30
        ),
    )
    @settings(max_examples=50)
    def test_updates_keep_invariants(self, values, updates):
        tree = FenwickTree.from_values(values)
        reference = list(values)
        for index, new_value in updates:
            if index >= len(reference):
                continue
            tree.set(index, new_value)
            reference[index] = new_value
        assert tree.total == sum(reference)
        for i in range(len(reference) + 1):
            assert tree.prefix_sum(i) == sum(reference[:i])

    @given(weights)
    def test_find_distribution_weights(self, values):
        """Each slot is selected by exactly `weight` many targets."""
        tree = FenwickTree.from_values(values)
        hits = [0] * len(values)
        for target in range(tree.total):
            hits[tree.find(target)] += 1
        assert hits == values
