"""Property: attaching instrumentation never changes a trajectory.

Counters are accounted per chunk from batch-consumption arithmetic and
never consume randomness, so a run with an ``Instrumentation`` bag
attached must be *bit-identical* — same events, same interactions, same
final configuration — to the same seed without one.  This is the
contract that makes telemetry safe to leave on in scenario campaigns.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AGProtocol,
    Configuration,
    JumpEngine,
    SequentialEngine,
    TreeRankingProtocol,
)
from repro.configurations.generators import random_configuration
from repro.core.scheduler import ScheduledEngine, WeightedScheduledEngine
from repro.obs import Instrumentation
from repro.scenarios.schedulers import StateBiasedScheduler


def _run_pair(make_engine, max_events=400):
    """Run twice from the same seed, with and without instrumentation."""
    plain = make_engine(None)
    instr = Instrumentation()
    counted = make_engine(instr)
    silent_plain = plain.run(max_events=max_events)
    silent_counted = counted.run(max_events=max_events)
    assert silent_plain == silent_counted
    assert plain.events == counted.events
    assert plain.interactions == counted.interactions
    assert plain.counts == counted.counts
    return instr


class TestTrajectoryEquality:
    @given(
        st.lists(st.integers(0, 9), min_size=10, max_size=10),
        st.integers(0, 2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_jump_same_state_loop(self, states, seed):
        protocol = AGProtocol(10)
        start = Configuration.from_agents(states, 10)
        instr = _run_pair(
            lambda bag: JumpEngine(
                protocol, start, np.random.default_rng(seed),
                instrumentation=bag,
            )
        )
        assert instr.get("events") == instr.get(
            "proposal_mode_events"
        ) + instr.get("fenwick_mode_events")

    @given(st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_jump_fused_general_loop(self, seed):
        protocol = TreeRankingProtocol(25)
        start = random_configuration(protocol, seed=seed % 1000)
        instr = _run_pair(
            lambda bag: JumpEngine(
                protocol, start, np.random.default_rng(seed),
                instrumentation=bag,
            )
        )
        assert instr.get("fenwick_finds") + instr.get(
            "composite_finds"
        ) + instr.get("pool_draws") >= instr.get("events")

    @given(
        st.lists(st.integers(0, 7), min_size=8, max_size=8),
        st.integers(0, 2**31),
    )
    @settings(max_examples=15, deadline=None)
    def test_sequential_engine(self, states, seed):
        protocol = AGProtocol(8)
        start = Configuration.from_agents(states, 8)
        instr = _run_pair(
            lambda bag: SequentialEngine(
                protocol, start, np.random.default_rng(seed),
                instrumentation=bag,
            ),
            max_events=120,
        )
        assert instr.get("pair_draws") == instr.get("interactions")

    @given(st.integers(0, 2**31))
    @settings(max_examples=10, deadline=None)
    def test_scheduled_engines_under_bias(self, seed):
        protocol = TreeRankingProtocol(13, k=3)
        start = random_configuration(
            protocol, seed=seed % 997, include_extras=True
        )
        weights = (
            [1.0] * protocol.num_ranks
            + [0.25] * protocol.num_extra_states
        )
        for cls in (ScheduledEngine, WeightedScheduledEngine):
            instr = _run_pair(
                lambda bag, cls=cls: cls(
                    protocol, start, np.random.default_rng(seed),
                    StateBiasedScheduler(weights),
                    instrumentation=bag,
                ),
                max_events=200,
            )
            assert instr.get("events") > 0
