"""Property tests: engine snapshots restore bit-for-bit.

The exactness contract of :mod:`repro.core.snapshot`: at a ``run()``
boundary, *run → continue* and *run → snapshot → restore → continue*
are indistinguishable — identical counts, identical counters, and (for
the canonicalised engines) identical downstream trajectories — for all
five engine kinds.  Serialisation (pickle and JSON) must round-trip
without weakening that.
"""

import json
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AGProtocol,
    EngineSnapshot,
    EpochBoundary,
    EpochScheduler,
    RingOfTrapsProtocol,
    StateBiasedScheduler,
    TreeRankingProtocol,
    build_engine,
    random_configuration,
    resume_engine,
)
from repro.core.scheduler import WeightedScheduledEngine
from repro.exceptions import ReproError, SimulationError
from repro.scenarios.schedulers import ClusteredScheduler, DegreeSkewedScheduler


def _protocol(index):
    return [
        AGProtocol(12),
        RingOfTrapsProtocol(m=4),
        TreeRankingProtocol(13, k=3),
    ][index]


def _scheduler(kind, protocol):
    if kind == "uniform":
        return None
    if kind == "biased":
        return StateBiasedScheduler(
            [1.0 if s % 2 else 0.5 for s in range(protocol.num_states)]
        )
    if kind == "clustered":
        return ClusteredScheduler(
            num_states=protocol.num_states, num_clusters=3, across=0.2
        )
    if kind == "agent":
        return DegreeSkewedScheduler(exponent=1.5)
    # Epoch timeline crossing at least one boundary in a typical run.
    return EpochScheduler(
        [
            (
                EpochBoundary("events", 60),
                ClusteredScheduler(
                    num_states=protocol.num_states, num_clusters=2,
                    across=0.3,
                ),
            ),
            (None, StateBiasedScheduler([1.0] * protocol.num_states)),
        ]
    )


def _assert_same_state(reference, *others):
    for other in others:
        assert other.counts == reference.counts
        assert other.events == reference.events
        assert other.interactions == reference.interactions


def _three_way(protocol, configuration, seed, scheduler, engine,
               warm_events, tail_events, backend="python"):
    """run→continue == run→snapshot→restore→continue, all roundtrips."""
    def fresh():
        driver, _ = build_engine(
            protocol, configuration, seed, engine=engine,
            scheduler=scheduler, backend=backend,
        )
        return driver

    untouched = fresh()
    untouched.run(max_events=warm_events)
    checkpointed = fresh()
    checkpointed.run(max_events=warm_events)
    snapshot = checkpointed.snapshot()

    restored = resume_engine(protocol, snapshot, scheduler=scheduler)
    pickled = resume_engine(
        protocol, pickle.loads(pickle.dumps(snapshot)), scheduler=scheduler
    )
    jsoned = resume_engine(
        protocol,
        EngineSnapshot.from_dict(json.loads(json.dumps(snapshot.to_dict()))),
        scheduler=scheduler,
    )
    _assert_same_state(untouched, checkpointed, restored, pickled, jsoned)

    arms = (untouched, checkpointed, restored, pickled, jsoned)
    silences = [arm.run(max_events=tail_events) for arm in arms]
    assert len(set(silences)) == 1
    _assert_same_state(*arms)
    return snapshot


class TestSnapshotExactness:
    @settings(max_examples=40, deadline=None)
    @given(
        protocol_index=st.integers(0, 2),
        warm_events=st.integers(0, 150),
        tail_events=st.integers(1, 400),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_jump_engine(self, protocol_index, warm_events, tail_events,
                         seed):
        protocol = _protocol(protocol_index)
        start = random_configuration(protocol, seed=seed)
        snapshot = _three_way(
            protocol, start, seed, None, "jump", warm_events, tail_events
        )
        assert snapshot.kind == "jump"

    @settings(max_examples=25, deadline=None)
    @given(
        protocol_index=st.integers(0, 2),
        warm_events=st.integers(0, 80),
        tail_events=st.integers(1, 200),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_sequential_engine(self, protocol_index, warm_events,
                               tail_events, seed):
        protocol = _protocol(protocol_index)
        start = random_configuration(protocol, seed=seed)
        snapshot = _three_way(
            protocol, start, seed, None, "sequential", warm_events,
            tail_events,
        )
        assert snapshot.kind == "sequential"
        assert snapshot.agent_states is not None

    @settings(max_examples=20, deadline=None)
    @given(
        protocol_index=st.integers(0, 2),
        scheduler_kind=st.sampled_from(["biased", "clustered"]),
        warm_events=st.integers(0, 120),
        tail_events=st.integers(1, 300),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_weighted_fast_path(self, protocol_index, scheduler_kind,
                                warm_events, tail_events, seed):
        protocol = _protocol(protocol_index)
        scheduler = _scheduler(scheduler_kind, protocol)
        start = random_configuration(protocol, seed=seed)
        _three_way(
            protocol, start, seed, scheduler, "jump", warm_events,
            tail_events,
        )

    @settings(max_examples=15, deadline=None)
    @given(
        protocol_index=st.integers(0, 2),
        scheduler_kind=st.sampled_from(["biased", "clustered"]),
        warm_events=st.integers(0, 60),
        tail_events=st.integers(1, 150),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_rejection_engine(self, protocol_index, scheduler_kind,
                              warm_events, tail_events, seed):
        protocol = _protocol(protocol_index)
        scheduler = _scheduler(scheduler_kind, protocol)
        start = random_configuration(protocol, seed=seed)
        snapshot = _three_way(
            protocol, start, seed, scheduler, "sequential", warm_events,
            tail_events,
        )
        assert snapshot.kind == "scheduled"

    @settings(max_examples=15, deadline=None)
    @given(
        protocol_index=st.integers(0, 2),
        warm_events=st.integers(0, 60),
        tail_events=st.integers(1, 150),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_agent_engine(self, protocol_index, warm_events, tail_events,
                          seed):
        protocol = _protocol(protocol_index)
        scheduler = _scheduler("agent", protocol)
        start = random_configuration(protocol, seed=seed)
        snapshot = _three_way(
            protocol, start, seed, scheduler, "jump", warm_events,
            tail_events,
        )
        assert snapshot.kind == "agent"

    @settings(max_examples=25, deadline=None)
    @given(
        protocol_index=st.integers(0, 2),
        warm_events=st.integers(0, 150),
        tail_events=st.integers(1, 400),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_batch_engine_two_way(self, protocol_index, warm_events,
                                  tail_events, seed):
        """The numpy batch backend's snapshot canonicalises the taker
        (buffered draws are discarded — exact by memorylessness), so the
        contract is two-way: the snapshotting engine and every engine
        restored from the snapshot (direct, pickle, JSON) continue
        bit-identically to *each other*."""
        protocol = _protocol(protocol_index)
        start = random_configuration(protocol, seed=seed)
        live, name = build_engine(
            protocol, start, seed, engine="jump", backend="numpy"
        )
        assert name == "batch"
        live.run(max_events=warm_events)
        snapshot = live.snapshot()
        assert snapshot.kind == "batch"
        restored = resume_engine(protocol, snapshot)
        pickled = resume_engine(protocol, pickle.loads(pickle.dumps(snapshot)))
        jsoned = resume_engine(
            protocol,
            EngineSnapshot.from_dict(json.loads(json.dumps(snapshot.to_dict()))),
        )
        arms = (live, restored, pickled, jsoned)
        _assert_same_state(*arms)
        silences = [
            arm.run(max_events=arm.events + tail_events) for arm in arms
        ]
        assert len(set(silences)) == 1
        _assert_same_state(*arms)

    @settings(max_examples=20, deadline=None)
    @given(
        protocol_index=st.integers(0, 2),
        warm_events=st.integers(0, 100),
        tail_events=st.integers(1, 300),
        seed=st.integers(0, 2**31 - 1),
        target=st.sampled_from(["jump", "sequential"]),
    )
    def test_batch_snapshot_rehosts_across_backends(
        self, protocol_index, warm_events, tail_events, seed, target
    ):
        """A batch snapshot rehosts onto the scalar engines (and back):
        the continuation runs to silence with conserved population —
        step-distribution-identical, not bit-identical, per the rehost
        contract."""
        protocol = _protocol(protocol_index)
        start = random_configuration(protocol, seed=seed)
        live, _ = build_engine(
            protocol, start, seed, engine="jump", backend="numpy"
        )
        live.run(max_events=warm_events)
        snapshot = live.snapshot()
        rehosted = resume_engine(protocol, snapshot.rehost(target))
        assert rehosted.counts == list(snapshot.counts)
        assert rehosted.events == snapshot.events
        rehosted.run(max_events=rehosted.events + tail_events)
        assert sum(rehosted.counts) == protocol.num_agents
        # And the reverse direction: scalar snapshot onto the batch host.
        scalar, _ = build_engine(protocol, start, seed, engine="jump")
        scalar.run(max_events=warm_events)
        back = resume_engine(protocol, scalar.snapshot().rehost("batch"))
        assert back.counts == scalar.counts
        back.run(max_events=back.events + tail_events)
        assert sum(back.counts) == protocol.num_agents

    @settings(max_examples=15, deadline=None)
    @given(
        protocol_index=st.integers(0, 2),
        engine=st.sampled_from(["jump", "sequential"]),
        warm_events=st.integers(0, 150),
        tail_events=st.integers(1, 300),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_epoch_timeline_mid_epoch(self, protocol_index, engine,
                                      warm_events, tail_events, seed):
        """Snapshots taken before, at, and after an epoch boundary all
        restore exactly, including the epoch cursor."""
        protocol = _protocol(protocol_index)
        scheduler = _scheduler("epoch", protocol)
        start = random_configuration(protocol, seed=seed)
        snapshot = _three_way(
            protocol, start, seed, scheduler, engine, warm_events,
            tail_events,
        )
        assert 0 <= snapshot.epoch < scheduler.num_epochs


class TestStepDrivenSnapshots:
    """step()-driven engines may hold drifted sampler state; the
    snapshot canonicalises, so snapshot-taker and restoree still agree
    with each other (two-way, not versus an untouched arm)."""

    @settings(max_examples=25, deadline=None)
    @given(
        protocol_index=st.integers(0, 2),
        warm_events=st.integers(1, 80),
        tail_events=st.integers(1, 120),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_sequential_step_two_way(self, protocol_index, warm_events,
                                     tail_events, seed):
        protocol = _protocol(protocol_index)
        start = random_configuration(protocol, seed=seed)
        live, _ = build_engine(protocol, start, seed, engine="sequential")
        events = 0
        while events < warm_events and not live.is_silent():
            if live.step() is not None:
                events += 1
        snapshot = live.snapshot()
        restored = resume_engine(protocol, snapshot)
        _assert_same_state(live, restored)
        live.run(max_events=live.events + tail_events)
        restored.run(max_events=restored.events + tail_events)
        _assert_same_state(live, restored)


class TestSnapshotValidation:
    def test_kind_mismatch_rejected(self):
        protocol = AGProtocol(12)
        start = random_configuration(protocol, seed=0)
        driver, _ = build_engine(protocol, start, 1)
        driver.run(max_events=20)
        snapshot = driver.snapshot()
        sequential, _ = build_engine(protocol, start, 1, engine="sequential")
        with pytest.raises(SimulationError):
            sequential.restore(snapshot)

    def test_protocol_shape_mismatch_rejected(self):
        protocol = AGProtocol(12)
        start = random_configuration(protocol, seed=0)
        driver, _ = build_engine(protocol, start, 1)
        driver.run(max_events=20)
        snapshot = driver.snapshot()
        with pytest.raises(SimulationError):
            resume_engine(AGProtocol(13), snapshot)

    def test_scheduled_restore_needs_scheduler(self):
        protocol = AGProtocol(12)
        scheduler = _scheduler("biased", protocol)
        start = random_configuration(protocol, seed=0)
        driver, _ = build_engine(
            protocol, start, 1, scheduler=scheduler
        )
        driver.run(max_events=20)
        snapshot = driver.snapshot()
        with pytest.raises(SimulationError):
            resume_engine(protocol, snapshot)

    def test_version_gate(self):
        protocol = AGProtocol(12)
        start = random_configuration(protocol, seed=0)
        driver, _ = build_engine(protocol, start, 1)
        driver.run(max_events=20)
        data = driver.snapshot().to_dict()
        data["version"] = 99
        with pytest.raises(SimulationError):
            EngineSnapshot.from_dict(data)

    def test_tampered_counts_rejected(self):
        protocol = AGProtocol(12)
        start = random_configuration(protocol, seed=0)
        driver, _ = build_engine(protocol, start, 1)
        driver.run(max_events=20)
        data = driver.snapshot().to_dict()
        data["counts"] = [c + 1 for c in data["counts"]]
        with pytest.raises(ReproError):
            resume_engine(protocol, EngineSnapshot.from_dict(data))

    def test_weighted_routing_travels(self):
        """A restored weighted engine reuses the snapshot's thinned
        routing flags instead of re-deriving them from mid-run counts."""
        protocol = TreeRankingProtocol(13, k=3)
        scheduler = _scheduler("clustered", protocol)
        start = random_configuration(protocol, seed=2)
        driver, name = build_engine(
            protocol, start, 2, scheduler=scheduler
        )
        if not isinstance(driver, WeightedScheduledEngine):
            pytest.skip("scheduler did not compile to the weighted path")
        driver.run(max_events=50)
        snapshot = driver.snapshot()
        assert snapshot.thinned is not None
        restored = resume_engine(protocol, snapshot, scheduler=scheduler)
        assert tuple(restored._thinned) == snapshot.thinned
