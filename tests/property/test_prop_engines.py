"""Property tests: the engine backends agree and conserve invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AGProtocol,
    Configuration,
    JumpEngine,
    SequentialEngine,
)
from repro.core.batch import BatchEngine


class TestEngineInvariants:
    @given(
        st.lists(st.integers(0, 9), min_size=10, max_size=10),
        st.integers(0, 2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_engines_reach_the_same_silent_set(self, states, seed):
        """AG has a unique silent configuration; every engine backend
        must find it from any start."""
        protocol = AGProtocol(10)
        start = Configuration.from_agents(states, 10)
        for cls in (JumpEngine, SequentialEngine, BatchEngine):
            engine = cls(protocol, start, np.random.default_rng(seed))
            assert engine.run() is True
            assert engine.counts == [1] * 10

    @given(
        st.lists(st.integers(0, 9), min_size=10, max_size=10),
        st.integers(0, 2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_jump_interactions_lower_bounded_by_events(self, states, seed):
        protocol = AGProtocol(10)
        engine = JumpEngine(
            protocol,
            Configuration.from_agents(states, 10),
            np.random.default_rng(seed),
        )
        engine.run()
        assert engine.interactions >= engine.events

    @given(
        st.lists(st.integers(0, 9), min_size=10, max_size=10),
        st.integers(0, 2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_family_weight_zero_iff_no_duplicates(self, states, seed):
        protocol = AGProtocol(10)
        engine = JumpEngine(
            protocol,
            Configuration.from_agents(states, 10),
            np.random.default_rng(seed),
        )
        has_duplicates = any(c > 1 for c in engine.counts)
        assert (engine.productive_weight > 0) == has_duplicates

    @given(st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_forced_chain_identical_behaviour(self, seed):
        """With exactly two agents, every interaction is productive, so
        interactions == events in BOTH engines, deterministically."""
        protocol = AGProtocol(2)
        start = Configuration([2, 0])
        for cls in (JumpEngine, SequentialEngine, BatchEngine):
            engine = cls(protocol, start, np.random.default_rng(seed))
            assert engine.run() is True
            assert engine.interactions == engine.events == 1


class TestStatisticalAgreement:
    @settings(max_examples=1, deadline=None)
    @given(st.just(0))
    def test_mean_times_agree_for_ag16(self, __):
        """Medians across 60 seeds agree within 15% between engines."""
        protocol = AGProtocol(16)
        start = Configuration.all_in_state(0, 16, 16)

        def median_time(cls, base):
            times = []
            for seed in range(60):
                engine = cls(protocol, start, np.random.default_rng(base + seed))
                engine.run()
                times.append(engine.interactions)
            return float(np.median(times))

        jump = median_time(JumpEngine, 1000)
        seq = median_time(SequentialEngine, 2000)
        assert abs(jump / seq - 1) < 0.15

    @settings(max_examples=1, deadline=None)
    @given(st.just(0))
    def test_batch_median_times_agree_for_ag16(self, __):
        """The numpy batch kernel realises the same interaction-count
        law as the jump chain: medians across 60 seeds within 15%."""
        protocol = AGProtocol(16)
        start = Configuration.all_in_state(0, 16, 16)

        def median_time(cls, base):
            times = []
            for seed in range(60):
                engine = cls(protocol, start, np.random.default_rng(base + seed))
                engine.run()
                times.append(engine.interactions)
            return float(np.median(times))

        jump = median_time(JumpEngine, 3000)
        batch = median_time(BatchEngine, 4000)
        assert abs(batch / jump - 1) < 0.15
