"""Property tests for the §3 ring invariants (Lemma 3 weight machinery)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Configuration, JumpEngine, RingOfTrapsProtocol
from repro.analysis.potentials import ring_weight, ring_weight_components


def ring_case():
    """Strategy: (m, arbitrary configuration over the ring's states)."""

    @st.composite
    def build(draw):
        m = draw(st.integers(2, 5))
        n = m * (m + 1)
        states = draw(
            st.lists(st.integers(0, n - 1), min_size=n, max_size=n)
        )
        seed = draw(st.integers(0, 2**31))
        return m, Configuration.from_agents(states, n), seed

    return build()


class TestRingWeightProperties:
    @given(ring_case())
    @settings(max_examples=40, deadline=None)
    def test_weight_nonnegative_and_zero_iff_solved(self, case):
        m, config, __ = case
        protocol = RingOfTrapsProtocol(m=m)
        weight = ring_weight(protocol, config.counts_list())
        assert weight >= 0
        if protocol.is_ranked(config):
            assert weight == 0

    @given(ring_case())
    @settings(max_examples=25, deadline=None)
    def test_weight_monotone_under_any_schedule(self, case):
        """Lemma 3: K never increases, from any start, on any schedule."""
        m, config, seed = case
        protocol = RingOfTrapsProtocol(m=m)
        engine = JumpEngine(protocol, config, np.random.default_rng(seed))
        previous = ring_weight(protocol, engine.counts)
        while True:
            if engine.step() is None:
                break
            current = ring_weight(protocol, engine.counts)
            assert current <= previous
            previous = current
        assert previous == 0  # silent ⟺ solved ⟺ K = 0

    @given(ring_case())
    @settings(max_examples=40, deadline=None)
    def test_components_consistent(self, case):
        m, config, __ = case
        protocol = RingOfTrapsProtocol(m=m)
        counts = config.counts_list()
        k1, k2 = ring_weight_components(protocol, counts)
        assert 0 <= k1 <= protocol.num_traps
        assert 0 <= k2 <= sum(t.size - 1 for t in protocol.traps)
        assert ring_weight(protocol, counts) == k1 + 2 * k2

    @given(ring_case())
    @settings(max_examples=40, deadline=None)
    def test_weight_bounded_by_twice_distance(self, case):
        """§3.2: K = k1 + 2k2 <= 2k for a k-distant configuration."""
        m, config, __ = case
        protocol = RingOfTrapsProtocol(m=m)
        counts = config.counts_list()
        k = sum(1 for c in counts if c == 0)
        assert ring_weight(protocol, counts) <= 2 * k
