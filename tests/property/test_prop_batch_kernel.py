"""Property tests: the numpy batch kernel is exact.

The batch kernel's claim is *step-distribution identity* with the jump
chain: the frozen-stratum rejection sampler (K1 proposals over the
frozen envelope, closed-form K2 strata for modified agents) realises
the uniform ordered-pair law conditioned on productivity, and the
geometric skips realise the same jump-chain clock.  These tests drive
it from hypothesis-chosen starts across all three family kinds
(same-state pairs, ordered products, triangular lines) and check the
silent sets, the incremental aggregates, and the interaction-count
law against the scalar engines.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AGProtocol,
    Configuration,
    JumpEngine,
    LineOfTrapsProtocol,
    TreeRankingProtocol,
    random_configuration,
)
from repro.core.batch import BatchEngine


class TestSilentSetEquivalence:
    @given(
        st.lists(st.integers(0, 9), min_size=10, max_size=10),
        st.integers(0, 2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_ag_reaches_the_unique_silent_set(self, states, seed):
        protocol = AGProtocol(10)
        start = Configuration.from_agents(states, 10)
        engine = BatchEngine(protocol, start, np.random.default_rng(seed))
        assert engine.run() is True
        assert engine.counts == [1] * 10
        engine._check_invariants()

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_tree_silences_and_ranks(self, seed):
        """TreeRanking drives the K2 strata (triangular reset line plus
        the ordered product) — the batch kernel must still silence into
        a ranked configuration, like the jump engine does."""
        protocol = TreeRankingProtocol(21, k=3)
        start = random_configuration(
            protocol, seed=seed, include_extras=True
        )
        engine = BatchEngine(protocol, start, np.random.default_rng(seed))
        assert engine.run() is True
        engine._check_invariants()
        final = Configuration(engine.counts)
        jump = JumpEngine(protocol, start, np.random.default_rng(seed))
        assert jump.run() is True
        # Both backends land in the protocol's silent set; silence is
        # state-defined, so ranking agreement is a law of the protocol,
        # not of the seed.
        assert protocol.is_ranked(final) == protocol.is_ranked(
            Configuration(jump.counts)
        )

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_line_silences(self, seed):
        protocol = LineOfTrapsProtocol(m=2)
        start = random_configuration(
            protocol, seed=seed, include_extras=True
        )
        engine = BatchEngine(protocol, start, np.random.default_rng(seed))
        assert engine.run() is True
        engine._check_invariants()


class TestAggregatesStayExact:
    @given(
        seed=st.integers(0, 2**31 - 1),
        budget=st.integers(1, 400),
    )
    @settings(max_examples=30, deadline=None)
    def test_invariants_hold_at_any_pause(self, seed, budget):
        """The incremental W/W1 aggregates (same-state, product, and
        triangular terms plus the per-line modified-count mirror) match
        a full recompute wherever the run pauses."""
        protocol = TreeRankingProtocol(21)
        start = random_configuration(protocol, seed=seed)
        engine = BatchEngine(protocol, start, np.random.default_rng(seed))
        engine.run(max_events=budget)
        engine._check_invariants()
        assert sum(engine.counts) == protocol.num_agents
        assert engine.interactions >= engine.events

    @given(
        seed=st.integers(0, 2**31 - 1),
        budget=st.integers(1, 200),
    )
    @settings(max_examples=20, deadline=None)
    def test_weight_zero_iff_silent(self, seed, budget):
        protocol = AGProtocol(12)
        start = random_configuration(protocol, seed=seed)
        engine = BatchEngine(protocol, start, np.random.default_rng(seed))
        silent = engine.run(max_events=budget)
        assert (engine.productive_weight == 0) == silent
        assert silent == engine.is_silent()


class TestStatisticalAgreement:
    @settings(max_examples=1, deadline=None)
    @given(st.just(0))
    def test_tree_interaction_law_matches_jump(self, __):
        """Medians of total interactions to silence across 120 seeds
        agree within 20% between the batch kernel and the jump chain on
        the multi-family tree protocol (K2-heavy workload).  The
        tolerance covers the Monte-Carlo noise of the median itself
        (jump-vs-jump across disjoint seed sets varies ~6% here)."""
        protocol = TreeRankingProtocol(21, k=3)
        start = random_configuration(protocol, seed=5, include_extras=True)

        def median_time(cls, base):
            times = []
            for seed in range(120):
                engine = cls(
                    protocol, start, np.random.default_rng(base + seed)
                )
                engine.run()
                times.append(engine.interactions)
            return float(np.median(times))

        jump = median_time(JumpEngine, 10_000)
        batch = median_time(BatchEngine, 20_000)
        assert abs(batch / jump - 1) < 0.20
