"""Property tests: the engines' cached total weight never desyncs.

The fast-path engines maintain the total productive weight ``W``
incrementally (from per-family deltas, or inline in the specialised
loops).  These tests re-sum the family weights from scratch after every
productive event, across every shipped protocol, and require exact
agreement — the invariant the whole jump-chain sampling rests on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AGProtocol,
    Configuration,
    JumpEngine,
    LineOfTrapsProtocol,
    ModifiedTreeProtocol,
    RingOfTrapsProtocol,
    SequentialEngine,
    SingleTrapProtocol,
    TreeDispersalProtocol,
    TreeRankingProtocol,
    random_configuration,
)
from repro.protocols.line import IsolatedLineProtocol


def _shipped_protocols():
    return [
        AGProtocol(12),
        RingOfTrapsProtocol(m=4),
        LineOfTrapsProtocol(m=2),
        TreeRankingProtocol(13, k=3),
        ModifiedTreeProtocol(13, k=3),
        TreeDispersalProtocol(13),
        SingleTrapProtocol(inner_size=4, num_agents=12),
        IsolatedLineProtocol(num_traps=3, inner_cap=2, num_agents=12),
    ]


def _start(protocol, seed):
    if isinstance(protocol, (SingleTrapProtocol, IsolatedLineProtocol)):
        rng = np.random.default_rng(seed)
        counts = rng.multinomial(
            protocol.num_agents, [1 / protocol.num_states] * protocol.num_states
        )
        return Configuration(counts.tolist())
    return random_configuration(protocol, seed=seed)


class TestCachedWeightInvariant:
    @pytest.mark.parametrize(
        "protocol", _shipped_protocols(), ids=lambda p: p.name
    )
    def test_jump_cached_weight_matches_recomputed_after_every_event(
        self, protocol
    ):
        for seed in range(3):
            engine = JumpEngine(
                protocol, _start(protocol, seed), np.random.default_rng(seed)
            )
            assert engine.productive_weight == engine.recomputed_weight()
            for _ in range(400):
                if engine.step() is None:
                    break
                assert (
                    engine.productive_weight == engine.recomputed_weight()
                ), f"desync after {engine.events} events on {protocol.name}"

    @pytest.mark.parametrize(
        "protocol", _shipped_protocols(), ids=lambda p: p.name
    )
    def test_debug_mode_run_asserts_weight_sync(self, protocol):
        """debug=True re-checks the invariant inside run() itself."""
        engine = JumpEngine(
            protocol,
            _start(protocol, 7),
            np.random.default_rng(7),
            debug=True,
        )
        engine.run(max_events=500)
        assert engine.productive_weight == engine.recomputed_weight()

    @pytest.mark.parametrize(
        "protocol", _shipped_protocols(), ids=lambda p: p.name
    )
    def test_fast_run_leaves_weight_synced(self, protocol):
        """The specialised loops must hand back a consistent engine."""
        engine = JumpEngine(
            protocol, _start(protocol, 11), np.random.default_rng(11)
        )
        engine.run(max_events=300)
        assert engine.productive_weight == engine.recomputed_weight()
        # And the engine must still be steppable afterwards.
        event = engine.step()
        if event is not None:
            assert engine.productive_weight == engine.recomputed_weight()

    def test_sequential_cached_weight_matches_recomputed(self):
        protocol = RingOfTrapsProtocol(m=4)
        engine = SequentialEngine(
            protocol,
            Configuration.all_in_state(0, 20, 20),
            np.random.default_rng(5),
        )
        for _ in range(2000):
            engine.step()
            recomputed = sum(f.weight for f in engine._families)
            assert engine.productive_weight == recomputed
            if engine.is_silent():
                break

    @given(
        st.lists(st.integers(0, 11), min_size=12, max_size=12),
        st.integers(0, 2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_fuzzed_ag_starts_never_desync(self, states, seed):
        protocol = AGProtocol(12)
        engine = JumpEngine(
            protocol,
            Configuration.from_agents(states, 12),
            np.random.default_rng(seed),
            debug=True,
        )
        assert engine.run() is True
        assert engine.productive_weight == engine.recomputed_weight() == 0
