"""Unit tests for trajectory instrumentation."""

import pytest

from repro import (
    AGProtocol,
    Configuration,
    TreeRankingProtocol,
    all_in_state_configuration,
    run_protocol,
)
from repro.analysis.trajectories import (
    PhaseCensus,
    ResetCounter,
    SampledMetricRecorder,
    TreePhaseRecorder,
)


class TestSampledMetricRecorder:
    def test_sampling_rate(self):
        protocol = AGProtocol(16)
        start = Configuration.all_in_state(0, 16, 16)
        recorder = SampledMetricRecorder(
            lambda counts: max(counts), sample_every=10
        )
        result = run_protocol(protocol, start, seed=1, recorder=recorder)
        # start + every 10th event + final
        expected = 1 + result.events // 10 + 1
        assert abs(len(recorder.values) - expected) <= 1

    def test_final_state_always_sampled(self):
        protocol = AGProtocol(8)
        start = Configuration.all_in_state(0, 8, 8)
        recorder = SampledMetricRecorder(
            lambda counts: max(counts), sample_every=10_000
        )
        result = run_protocol(protocol, start, seed=1, recorder=recorder)
        assert recorder.values[-1] == 1  # perfectly ranked
        assert recorder.interactions[-1] == result.interactions

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            SampledMetricRecorder(lambda c: 0, sample_every=0)

    def test_interactions_monotone(self):
        protocol = AGProtocol(12)
        start = Configuration.all_in_state(0, 12, 12)
        recorder = SampledMetricRecorder(lambda c: 0, sample_every=3)
        run_protocol(protocol, start, seed=2, recorder=recorder)
        stamps = recorder.interactions
        assert all(a <= b for a, b in zip(stamps, stamps[1:]))


class TestPhaseCensus:
    def test_phase_labels(self):
        assert PhaseCensus(0, tree=5, red=0, green=0).phase == "tree"
        assert PhaseCensus(0, tree=1, red=3, green=1).phase == "red"
        assert PhaseCensus(0, tree=1, red=1, green=3).phase == "green"


class TestTreePhaseRecorder:
    def test_census_totals_conserve_population(self):
        protocol = TreeRankingProtocol(20, k=3)
        leaf = protocol.tree.leaves[-1]
        start = all_in_state_configuration(protocol, leaf)
        recorder = TreePhaseRecorder(protocol, sample_every=5)
        run_protocol(protocol, start, seed=3, recorder=recorder)
        for census in recorder.censuses:
            assert census.tree + census.red + census.green == 20

    def test_reset_run_passes_through_red(self):
        """A leaf pile-up must visit the red phase before finishing."""
        protocol = TreeRankingProtocol(20, k=3)
        leaf = protocol.tree.leaves[-1]
        start = all_in_state_configuration(protocol, leaf)
        recorder = TreePhaseRecorder(protocol, sample_every=1)
        run_protocol(protocol, start, seed=3, recorder=recorder)
        phases = recorder.phases_seen()
        assert "red" in phases
        assert recorder.censuses[-1].phase == "tree"  # ends ranked

    def test_solved_run_stays_in_tree_phase(self):
        protocol = TreeRankingProtocol(10, k=2)
        recorder = TreePhaseRecorder(protocol)
        run_protocol(
            protocol, protocol.solved_configuration(), seed=0,
            recorder=recorder,
        )
        assert recorder.phases_seen() == ["tree"]


class TestResetCounter:
    def test_counts_r2_firings(self):
        protocol = TreeRankingProtocol(20, k=3)
        leaf = protocol.tree.leaves[-1]
        start = all_in_state_configuration(protocol, leaf)
        counter = ResetCounter(protocol)
        run_protocol(protocol, start, seed=4, recorder=counter)
        assert counter.resets >= 1
        assert len(counter.reset_interactions) == counter.resets
        stamps = counter.reset_interactions
        assert all(a <= b for a, b in zip(stamps, stamps[1:]))

    def test_no_resets_from_solved(self):
        protocol = TreeRankingProtocol(10, k=2)
        counter = ResetCounter(protocol)
        run_protocol(
            protocol, protocol.solved_configuration(), seed=0,
            recorder=counter,
        )
        assert counter.resets == 0

    def test_dispersal_from_root_never_resets(self):
        """Lemma 19: from all-at-root, R1 ranks without any overloads
        reaching a leaf pair."""
        protocol = TreeRankingProtocol(21, k=3)
        start = Configuration.all_in_state(0, 21, protocol.num_states)
        counter = ResetCounter(protocol)
        result = run_protocol(protocol, start, seed=5, recorder=counter)
        assert result.silent
        assert protocol.is_ranked(result.final_configuration)
        assert counter.resets == 0
