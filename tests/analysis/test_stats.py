"""Unit tests for summary statistics."""

import pytest

from repro.analysis.stats import (
    geometric_mean,
    summarise,
    wilson_interval,
)
from repro.exceptions import ExperimentError


class TestSummarise:
    def test_basic_summary(self):
        s = summarise([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s.count == 5
        assert s.mean == 3.0
        assert s.median == 3.0
        assert s.minimum == 1.0
        assert s.maximum == 5.0
        assert s.p25 == 2.0
        assert s.p75 == 4.0

    def test_single_value(self):
        s = summarise([7.0])
        assert s.std == 0.0
        assert s.mean == s.median == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            summarise([])

    def test_describe(self):
        s = summarise([1.0, 2.0, 9.0])
        assert "2" in s.describe()
        assert "[1..9]" in s.describe()


class TestWilson:
    def test_all_successes(self):
        lo, hi = wilson_interval(20, 20)
        assert 0.8 < lo < 1.0
        assert hi == 1.0

    def test_no_successes(self):
        lo, hi = wilson_interval(0, 20)
        assert lo == 0.0
        assert 0 < hi < 0.2

    def test_half(self):
        lo, hi = wilson_interval(50, 100)
        assert lo < 0.5 < hi
        assert hi - lo < 0.25

    def test_interval_shrinks_with_trials(self):
        narrow = wilson_interval(500, 1000)
        wide = wilson_interval(5, 10)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_validation(self):
        with pytest.raises(ExperimentError):
            wilson_interval(1, 0)
        with pytest.raises(ExperimentError):
            wilson_interval(5, 3)
        with pytest.raises(ExperimentError):
            wilson_interval(-1, 3)


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_scale_invariance(self):
        values = [1.5, 2.0, 7.0]
        doubled = [2 * v for v in values]
        assert geometric_mean(doubled) == pytest.approx(
            2 * geometric_mean(values)
        )

    def test_validation(self):
        with pytest.raises(ExperimentError):
            geometric_mean([])
        with pytest.raises(ExperimentError):
            geometric_mean([1.0, 0.0])
