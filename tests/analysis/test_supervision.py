"""Supervised executor: loss isolation, quarantine, and pre-checks.

The central claim under test: one poison job (crash / hang / raise)
costs exactly that job — every other job's result is bit-identical to
an unsupervised serial run — and is reported as data, not as a dead
ensemble.
"""

import os
import time

import pytest

from repro.analysis.supervision import (
    JobFailure,
    SupervisionPolicy,
    check_picklable,
    supervised_map,
)
from repro.analysis.sweep import fan_out, measure_stabilisation, run_sweep
from repro.exceptions import ExperimentError


# ----------------------------------------------------------------------
# Module-level workers (process pools require picklable callables).
# ----------------------------------------------------------------------
def _double(job):
    return job * 2


def _crash_on(job):
    value, poison = job
    if value == poison:
        os._exit(23)  # hard worker death, not an exception
    return value * 2


def _hang_on(job):
    value, poison = job
    if value == poison:
        time.sleep(120.0)
    return value * 2


def _raise_on(job):
    value, poison = job
    if value == poison:
        raise ValueError(f"poison value {value}")
    return value * 2


QUARANTINE = SupervisionPolicy(
    max_attempts=2, backoff_base=0.01, backoff_cap=0.05, fail_fast=False
)


class TestSupervisedMap:
    def test_happy_path_matches_serial(self):
        jobs = list(range(12))
        serial, _ = supervised_map(_double, jobs, workers=1)
        pooled, failures = supervised_map(_double, jobs, workers=3)
        assert pooled == serial == [j * 2 for j in jobs]
        assert failures == []

    def test_crash_quarantines_only_the_poison_job(self):
        jobs = [(value, 7) for value in range(12)]
        results, failures = supervised_map(
            _crash_on, jobs, workers=3, policy=QUARANTINE
        )
        assert [f.index for f in failures] == [7]
        assert failures[0].kind == "crash"
        assert failures[0].attempts == QUARANTINE.max_attempts
        assert results[7] is None
        # Loss isolation: everything else is bit-identical to serial.
        expected = [value * 2 for value, _ in jobs]
        survivors = [r for i, r in enumerate(results) if i != 7]
        assert survivors == [e for i, e in enumerate(expected) if i != 7]

    def test_hang_quarantined_with_deadline(self):
        policy = SupervisionPolicy(
            timeout=1.0, max_attempts=2, backoff_base=0.01,
            backoff_cap=0.05, fail_fast=False,
        )
        jobs = [(value, 4) for value in range(8)]
        results, failures = supervised_map(
            _hang_on, jobs, workers=2, policy=policy
        )
        assert [f.index for f in failures] == [4]
        assert failures[0].kind == "hang"
        assert results[4] is None
        survivors = [r for i, r in enumerate(results) if i != 4]
        assert survivors == [v * 2 for v, _ in jobs if v != 4]

    def test_worker_exception_fails_fast_by_default(self):
        jobs = [(value, 5) for value in range(8)]
        with pytest.raises(ValueError, match="poison value 5"):
            supervised_map(_raise_on, jobs, workers=2)
        with pytest.raises(ValueError, match="poison value 5"):
            supervised_map(_raise_on, jobs, workers=1)

    def test_worker_exception_quarantined_without_fail_fast(self):
        jobs = [(value, 5) for value in range(8)]
        for workers in (1, 3):
            results, failures = supervised_map(
                _raise_on, jobs, workers=workers, policy=QUARANTINE
            )
            assert [f.index for f in failures] == [5]
            assert failures[0].kind == "error"
            assert failures[0].error == "ValueError"
            assert results[5] is None

    def test_empty_jobs(self):
        results, failures = supervised_map(_double, [], workers=4)
        assert results == [] and failures == []

    def test_workers_validation(self):
        with pytest.raises(ExperimentError):
            supervised_map(_double, [1], workers=0)


class TestPickleChecks:
    def test_unpicklable_worker_named(self):
        with pytest.raises(ExperimentError, match="worker.*lambda"):
            supervised_map(lambda j: j, [1, 2], workers=2)

    def test_unpicklable_job_named_by_index(self):
        jobs = [1, 2, (lambda: 3), 4]
        with pytest.raises(ExperimentError, match="job #2"):
            check_picklable(_double, jobs)

    def test_serial_runs_skip_the_check(self):
        # Serial execution never pickles, so lambdas are fine there.
        results, _ = supervised_map(lambda j: j + 1, [1, 2], workers=1)
        assert results == [2, 3]


class TestPolicyValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ExperimentError):
            SupervisionPolicy(timeout=0.0)
        with pytest.raises(ExperimentError):
            SupervisionPolicy(max_attempts=0)
        with pytest.raises(ExperimentError):
            SupervisionPolicy(jitter=-0.1)
        with pytest.raises(ExperimentError):
            SupervisionPolicy(backoff_base=-1.0)

    def test_backoff_doubles_and_caps(self):
        policy = SupervisionPolicy(
            backoff_base=1.0, backoff_cap=3.0, jitter=0.0
        )
        assert policy.backoff_delay(1) == 1.0
        assert policy.backoff_delay(2) == 2.0
        assert policy.backoff_delay(3) == 3.0  # capped, not 4.0


class TestFanOutContract:
    def test_fan_out_raises_on_quarantine(self):
        jobs = [(value, 3) for value in range(6)]
        with pytest.raises(ExperimentError, match="failed under supervision"):
            fan_out(_crash_on, jobs, workers=2, policy=QUARANTINE)

    def test_fan_out_plain_results(self):
        assert fan_out(_double, [1, 2, 3], workers=2) == [2, 4, 6]
        assert fan_out(_double, [1, 2, 3]) == [2, 4, 6]


def _tiny_build(params, rng):
    from repro import AGProtocol, random_configuration

    protocol = AGProtocol(int(params["n"]))
    return protocol, random_configuration(protocol, seed=rng)


class TestSweepValidation:
    def test_run_sweep_rejects_empty_points(self):
        with pytest.raises(ExperimentError, match="at least one parameter"):
            run_sweep([], _tiny_build)

    def test_measure_stabilisation_rejects_empty_xs(self):
        with pytest.raises(ExperimentError, match="at least one n value"):
            measure_stabilisation(_tiny_build, [])

    def test_sweep_results_identical_across_worker_counts(self):
        serial = run_sweep(
            [{"n": 8}], _tiny_build, repetitions=4, seed=3, workers=1
        )
        pooled = run_sweep(
            [{"n": 8}], _tiny_build, repetitions=4, seed=3, workers=3
        )
        assert [r.interactions for r in serial[0].runs] == [
            r.interactions for r in pooled[0].runs
        ]
        assert [
            r.final_configuration.counts_list() for r in serial[0].runs
        ] == [r.final_configuration.counts_list() for r in pooled[0].runs]
        assert serial[0].failures == [] and pooled[0].failures == []


class TestJobFailureRepr:
    def test_repr_is_informative(self):
        failure = JobFailure(
            index=3, kind="crash", error="BrokenProcessPool",
            message="worker died", attempts=2,
        )
        text = repr(failure)
        assert "#3" in text and "crash" in text and "2 attempt" in text
