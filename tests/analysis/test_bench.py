"""Unit tests for the hot-path benchmark harness (``repro bench``)."""

import json

import numpy as np
import pytest

from repro import AGProtocol, Configuration
from repro.analysis.bench import (
    LegacyJumpEngine,
    append_bench_history,
    bench_ratios,
    bench_suite,
    compare_bench,
    load_bench,
    read_bench_history,
    render_bench,
    run_bench,
    write_bench_json,
)
from repro.exceptions import SimulationError
from repro.viz.ascii import render_trend_table


def _fake_record(timestamp="20260101T000000", speedup=3.0, wvr=2.0):
    """A minimal synthetic bench record for trend-machinery tests."""
    def engine_case(case_id, ratio):
        return {
            "case": case_id,
            "legacy": {"events_per_sec": 100_000.0, "events": 1000},
            "current": {
                "events_per_sec": 100_000.0 * ratio, "events": 1000
            },
            "speedup": ratio,
        }

    return {
        "timestamp": timestamp,
        "cases": [
            engine_case("tree-n256", speedup),
            engine_case("line-m4", speedup * 0.7),
        ],
        "scheduler_cases": [
            {
                "case": "tree-epoch-n128",
                "rejection": {"events_per_sec": 50_000.0},
                "weighted": {"events_per_sec": 50_000.0 * wvr},
                "weighted_vs_rejection": wvr,
            }
        ],
    }


class TestLegacyJumpEngine:
    def test_frozen_baseline_still_correct(self):
        """The baseline must stay a *correct* engine, just a slow one."""
        protocol = AGProtocol(12)
        engine = LegacyJumpEngine(
            protocol,
            Configuration.all_in_state(0, 12, 12),
            np.random.default_rng(3),
        )
        assert engine.run() is True
        assert engine.counts == [1] * 12

    def test_budget_semantics_match_current_engine(self):
        protocol = AGProtocol(32)
        start = Configuration.all_in_state(0, 32, 32)
        engine = LegacyJumpEngine(protocol, start, np.random.default_rng(0))
        assert engine.run(max_events=7) is False
        assert engine.events == 7


class TestBenchSuite:
    def test_quick_suite_cases(self):
        cases = bench_suite(quick=True)
        assert len(cases) >= 3
        assert all(case.max_events <= 20_000 for case in cases)
        # The hybrid sampler's headline workload gates every PR.
        assert "line-m4" in {case.case_id for case in cases}

    def test_full_suite_includes_acceptance_case(self):
        cases = bench_suite(quick=False)
        by_id = {case.case_id: case for case in cases}
        assert "ag-n10000" in by_id
        assert by_id["ag-n10000"].num_agents == 10_000
        protocols = {case.protocol_name.split("(")[0] for case in cases}
        assert {"AG", "SingleTrap", "RingOfTraps", "TreeRanking"} <= protocols


class TestRunBench:
    def test_record_shape_and_json_roundtrip(self, tmp_path):
        record = run_bench(quick=True, seed=5, repeats=1)
        assert record["quick"] is True
        assert len(record["cases"]) == len(bench_suite(quick=True))
        for case in record["cases"]:
            for side in ("legacy", "current"):
                assert case[side]["events"] > 0
                assert case[side]["events_per_sec"] > 0
            assert case["speedup"] > 0
        assert record["headline"]["speedup"] > 0

        path = write_bench_json(record, output_dir=str(tmp_path))
        with open(path, encoding="utf-8") as handle:
            loaded = json.load(handle)
        assert loaded["headline"] == record["headline"]
        assert path.endswith(f"BENCH_{record['timestamp']}.json")

    def test_render_mentions_every_case(self):
        record = run_bench(quick=True, seed=1, repeats=1)
        text = render_bench(record)
        for case in record["cases"]:
            assert case["case"] in text
        assert "headline" in text


class TestBenchTrendGating:
    def test_ratios_cover_engine_and_scheduler_cases(self):
        ratios = bench_ratios(_fake_record())
        assert ratios["tree-n256"][0] == "speedup"
        assert ratios["tree-epoch-n128"][0] == "weighted_vs_rejection"
        assert ratios["tree-epoch-n128"][1] == 2.0

    def test_compare_passes_within_tolerance(self):
        baseline = _fake_record(speedup=3.0, wvr=2.0)
        current = _fake_record("20260102T000000", speedup=2.7, wvr=1.8)
        lines = compare_bench(current, baseline, tolerance=0.15)
        # every shared case reported, none failing
        assert len(lines) == 3
        assert all("->" in line for line in lines)

    def test_compare_fails_on_regression_beyond_tolerance(self):
        baseline = _fake_record(speedup=3.0, wvr=2.0)
        current = _fake_record("20260102T000000", speedup=2.0, wvr=2.0)
        with pytest.raises(SimulationError, match="tree-n256"):
            compare_bench(current, baseline, tolerance=0.15)

    def test_compare_fails_on_scheduler_ratio_regression(self):
        baseline = _fake_record(speedup=3.0, wvr=2.0)
        current = _fake_record("20260102T000000", speedup=3.0, wvr=1.2)
        with pytest.raises(SimulationError, match="tree-epoch-n128"):
            compare_bench(current, baseline, tolerance=0.15)

    def test_compare_tolerates_suite_growth(self):
        baseline = _fake_record()
        current = _fake_record("20260102T000000")
        current["cases"].append({
            "case": "brand-new",
            "legacy": {"events_per_sec": 1.0, "events": 1},
            "current": {"events_per_sec": 2.0, "events": 1},
            "speedup": 2.0,
        })
        lines = compare_bench(current, baseline)
        assert any("new case" in line for line in lines)
        # and removal is reported, not fatal
        del current["cases"][0]
        lines = compare_bench(current, baseline)
        assert any("baseline only" in line for line in lines)

    def test_committed_baselines_load_and_self_compare(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[2]
        for name in ("BENCH_BASELINE.json", "BENCH_BASELINE_FULL.json"):
            record = load_bench(str(root / name))
            assert compare_bench(record, record, tolerance=0.0)

    def test_history_roundtrip_and_trend_table(self, tmp_path):
        path = str(tmp_path / "bench_history.csv")
        first = append_bench_history(_fake_record(), path)
        second = append_bench_history(
            _fake_record("20260102T000000", speedup=3.3, wvr=2.2), path
        )
        assert first == second == 3
        rows = read_bench_history(path)
        assert len(rows) == 6
        assert rows[0]["case"] == "tree-n256"
        assert float(rows[0]["ratio"]) == 3.0
        table = render_trend_table(rows)
        assert "tree-n256" in table and "tree-epoch-n128" in table
        # second run's drift against the first is rendered
        assert "+10.0%" in table
