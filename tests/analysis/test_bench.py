"""Unit tests for the hot-path benchmark harness (``repro bench``)."""

import json

import numpy as np

from repro import AGProtocol, Configuration
from repro.analysis.bench import (
    LegacyJumpEngine,
    bench_suite,
    render_bench,
    run_bench,
    write_bench_json,
)


class TestLegacyJumpEngine:
    def test_frozen_baseline_still_correct(self):
        """The baseline must stay a *correct* engine, just a slow one."""
        protocol = AGProtocol(12)
        engine = LegacyJumpEngine(
            protocol,
            Configuration.all_in_state(0, 12, 12),
            np.random.default_rng(3),
        )
        assert engine.run() is True
        assert engine.counts == [1] * 12

    def test_budget_semantics_match_current_engine(self):
        protocol = AGProtocol(32)
        start = Configuration.all_in_state(0, 32, 32)
        engine = LegacyJumpEngine(protocol, start, np.random.default_rng(0))
        assert engine.run(max_events=7) is False
        assert engine.events == 7


class TestBenchSuite:
    def test_quick_suite_cases(self):
        cases = bench_suite(quick=True)
        assert len(cases) >= 3
        assert all(case.max_events <= 10_000 for case in cases)

    def test_full_suite_includes_acceptance_case(self):
        cases = bench_suite(quick=False)
        by_id = {case.case_id: case for case in cases}
        assert "ag-n10000" in by_id
        assert by_id["ag-n10000"].num_agents == 10_000
        protocols = {case.protocol_name.split("(")[0] for case in cases}
        assert {"AG", "SingleTrap", "RingOfTraps", "TreeRanking"} <= protocols


class TestRunBench:
    def test_record_shape_and_json_roundtrip(self, tmp_path):
        record = run_bench(quick=True, seed=5, repeats=1)
        assert record["quick"] is True
        assert len(record["cases"]) == len(bench_suite(quick=True))
        for case in record["cases"]:
            for side in ("legacy", "current"):
                assert case[side]["events"] > 0
                assert case[side]["events_per_sec"] > 0
            assert case["speedup"] > 0
        assert record["headline"]["speedup"] > 0

        path = write_bench_json(record, output_dir=str(tmp_path))
        with open(path, encoding="utf-8") as handle:
            loaded = json.load(handle)
        assert loaded["headline"] == record["headline"]
        assert path.endswith(f"BENCH_{record['timestamp']}.json")

    def test_render_mentions_every_case(self):
        record = run_bench(quick=True, seed=1, repeats=1)
        text = render_bench(record)
        for case in record["cases"]:
            assert case["case"] in text
        assert "headline" in text
