"""Unit tests for recovery-time analysis of campaigns."""

import pytest

from repro.analysis.recovery import (
    phase_table,
    recovery_records,
    recovery_table,
    survival_curve,
    survival_table,
)
from repro.exceptions import ExperimentError
from repro.scenarios import (
    FaultPhase,
    ProtocolSpec,
    RunPhase,
    Scenario,
    StartSpec,
    run_campaign,
)


@pytest.fixture(scope="module")
def campaign():
    scenario = Scenario(
        name="recovery-test",
        protocol=ProtocolSpec(kind="ag", num_agents=14),
        start=StartSpec(kind="random"),
        phases=(
            RunPhase(until="silence", max_events=100_000, label="stabilise"),
            FaultPhase(kind="corrupt", fraction=0.3, label="corrupt"),
            RunPhase(until="silence", max_events=100_000, label="recover-1"),
            FaultPhase(kind="crash", agents=4, label="crash"),
            RunPhase(until="silence", max_events=100_000, label="recover-2"),
        ),
    )
    return run_campaign(scenario, repetitions=4, seed=3)


class TestRecoveryRecords:
    def test_one_record_per_fault_per_repetition(self, campaign):
        records = recovery_records(campaign)
        assert len(records) == 2 * 4
        assert {r.fault_label for r in records} == {"corrupt", "crash"}
        assert all(r.recovered for r in records)
        assert all(r.recovery_time >= 0 for r in records)

    def test_trailing_fault_has_no_record(self):
        scenario = Scenario(
            name="trailing",
            protocol=ProtocolSpec(kind="ag", num_agents=10),
            phases=(
                RunPhase(until="silence", max_events=50_000),
                FaultPhase(kind="corrupt", agents=3),
            ),
        )
        records = recovery_records(run_campaign(scenario, repetitions=2))
        assert records == []

    def test_unrecovered_runs_marked_censored(self):
        scenario = Scenario(
            name="censored",
            protocol=ProtocolSpec(kind="ag", num_agents=14),
            start=StartSpec(kind="pileup"),
            phases=(
                FaultPhase(kind="corrupt", agents=3),
                RunPhase(until="silence", max_events=2),
            ),
        )
        records = recovery_records(run_campaign(scenario, repetitions=2))
        assert records and not any(r.recovered for r in records)


class TestSurvivalCurve:
    def test_monotone_nonincreasing_from_one_to_zero(self):
        ts, fractions = survival_curve([1.0, 2.0, 3.0, 4.0])
        assert fractions == sorted(fractions, reverse=True)
        assert fractions[0] == 1.0
        assert fractions[-1] == 0.0

    def test_explicit_grid(self):
        ts, fractions = survival_curve([1.0, 3.0], grid=[0.0, 2.0, 5.0])
        assert ts == [0.0, 2.0, 5.0]
        assert fractions == [1.0, 0.5, 0.0]

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            survival_curve([])


class TestTables:
    def test_recovery_table_rows_per_fault(self, campaign):
        table = recovery_table(campaign)
        assert len(table.rows) == 2
        rendered = table.render()
        assert "corrupt" in rendered and "crash" in rendered
        assert "4/4" in rendered

    def test_phase_table_covers_all_phases(self, campaign):
        table = phase_table(campaign)
        assert len(table.rows) == 5
        kinds = [row[1] for row in table.rows]
        assert kinds == ["run", "fault", "run", "fault", "run"]

    def test_survival_table_renders(self, campaign):
        table = survival_table(campaign)
        assert len(table.rows) == 9  # 8 steps + both endpoints
        assert table.rows[0][1] == 1.0
        assert table.rows[-1][1] == 0.0

    def test_tables_render_markdown(self, campaign):
        for table in (
            recovery_table(campaign),
            phase_table(campaign),
            survival_table(campaign),
        ):
            assert table.to_markdown().startswith("###")
