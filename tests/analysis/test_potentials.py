"""Unit tests for the paper's potential functions and line accounting."""

import numpy as np
import pytest

from repro import (
    JumpEngine,
    LineOfTrapsProtocol,
    PerfectlyBalancedTree,
    RingOfTrapsProtocol,
    random_configuration,
)
from repro.analysis.potentials import (
    LineVectors,
    all_traps_tidy,
    global_deficit,
    global_excess,
    global_surplus,
    indicated_lines,
    line_deficit,
    line_excess_tokens,
    line_surplus,
    line_vectors,
    max_tree_path_potential,
    ring_weight,
    ring_weight_components,
    stabilise_line,
    tree_path_potential,
)
from repro.exceptions import ConfigurationError


class TestRingWeight:
    protocol = RingOfTrapsProtocol(m=3)  # 3 traps of size 4

    def test_solved_configuration_weight_zero(self):
        counts = [1] * 12
        assert ring_weight(self.protocol, counts) == 0

    def test_gap_counting(self):
        counts = [1] * 12
        counts[2] = 0  # gap in trap 0
        counts[3] = 2
        k1, k2 = ring_weight_components(self.protocol, counts)
        assert k2 == 1
        assert k1 == 0  # trap 0 is not flat (state 3 overloaded)
        assert ring_weight(self.protocol, counts) == 2

    def test_flat_trap_with_empty_gate(self):
        counts = [1] * 12
        counts[0] = 0   # gate of trap 0 empty
        counts[1] = 2   # keep population size; inner overloaded → not flat
        k1, __ = ring_weight_components(self.protocol, counts)
        assert k1 == 0
        counts = [1] * 12
        counts[4] = 0   # gate of trap 1 empty, trap 1 flat
        counts[8] = 2
        k1, k2 = ring_weight_components(self.protocol, counts)
        assert k1 == 1 and k2 == 0

    def test_weight_bounded_by_2k(self):
        """K = k1 + 2·k2 <= 2k for any k-distant configuration (§3.2)."""
        from repro import k_distant_configuration

        for k in (1, 3, 6):
            for seed in range(5):
                config = k_distant_configuration(self.protocol, k, seed=seed)
                assert ring_weight(self.protocol, config.counts_list()) <= 2 * k

    def test_monotone_along_trajectories(self):
        """Lemma 3's core argument: K never increases."""
        protocol = RingOfTrapsProtocol(m=4)
        for seed in range(5):
            start = random_configuration(protocol, seed=seed,
                                         include_extras=False)
            engine = JumpEngine(protocol, start,
                                np.random.default_rng(seed))
            previous = ring_weight(protocol, engine.counts)
            while True:
                if engine.step() is None:
                    break
                current = ring_weight(protocol, engine.counts)
                assert current <= previous, "Lemma 3 weight increased"
                previous = current
            assert previous == 0  # silent ⇒ solved ⇒ K = 0


class TestTidiness:
    def test_tidy_detection(self):
        protocol = RingOfTrapsProtocol(m=3)
        counts = [1] * 12
        assert all_traps_tidy(protocol.traps, counts)
        counts[1] = 2  # overload at inner 1...
        counts[3] = 0  # ...below a gap at inner 3 → untidy
        assert not all_traps_tidy(protocol.traps, counts)

    def test_tidiness_absorbing_along_runs(self):
        """Lemma 2: once tidy, configurations remain tidy."""
        protocol = RingOfTrapsProtocol(m=4)
        for seed in range(3):
            start = random_configuration(protocol, seed=seed,
                                         include_extras=False)
            engine = JumpEngine(protocol, start, np.random.default_rng(seed))
            seen_tidy = False
            while True:
                tidy = all_traps_tidy(protocol.traps, engine.counts)
                if seen_tidy:
                    assert tidy, "tidiness must persist (Lemma 2)"
                seen_tidy = seen_tidy or tidy
                if engine.step() is None:
                    break
            assert seen_tidy


class TestTreePotential:
    tree = PerfectlyBalancedTree(9)

    def test_balanced_path_has_zero_potential(self):
        counts = [1] * 9
        for leaf in self.tree.leaves:
            assert tree_path_potential(self.tree, counts, leaf) == 0

    def test_extra_agent_raises_potential(self):
        counts = [1] * 9
        counts[0] = 2  # extra agent on the (branching) root
        for leaf in self.tree.leaves:
            assert tree_path_potential(self.tree, counts, leaf) == 1

    def test_non_branching_weighted_three_halves(self):
        counts = [1] * 9
        counts[1] += 1  # node 1 is non-branching, on paths to leaves 3, 4
        assert tree_path_potential(self.tree, counts, 3) == 1.5
        assert tree_path_potential(self.tree, counts, 7) == 0

    def test_missing_agent_lowers_potential(self):
        counts = [1] * 9
        counts[3] = 0  # leaf 3 empty
        assert tree_path_potential(self.tree, counts, 3) == -1

    def test_max_over_paths(self):
        counts = [1] * 9
        counts[6] += 2  # branching node on paths to 7, 8
        assert max_tree_path_potential(self.tree, counts) == 2


class TestLineVectors:
    def test_length_validation(self):
        with pytest.raises(ConfigurationError):
            LineVectors(beta=(1, 2), gamma=(0,), inner_caps=(2, 2))

    def test_totals(self):
        vectors = LineVectors(beta=(2, 0), gamma=(1, 3), inner_caps=(2, 2))
        assert vectors.num_agents == 6
        assert vectors.capacity == 6
        assert vectors.num_traps == 2

    def test_allocation_vector(self):
        vectors = LineVectors(beta=(1, 3), gamma=(4, 0), inner_caps=(2, 2))
        # trap 1: min(1 + 2, 2) = 2 ; trap 2: min(3 + 0, 2) = 2
        assert vectors.allocation() == (2, 2)

    def test_target_gate_vector(self):
        # under capacity: δ = γ mod 2 ; over capacity: δ = 1
        vectors = LineVectors(beta=(0, 2), gamma=(3, 2), inner_caps=(2, 2))
        # trap 1: 0+1 <= 2 → δ = 3 % 2 = 1 ; trap 2: 2+1 > 2 → δ = 1
        assert vectors.target_gate() == (1, 1)
        vectors = LineVectors(beta=(0, 0), gamma=(2, 0), inner_caps=(2, 2))
        assert vectors.target_gate() == (0, 0)

    def test_excess_vector(self):
        # under capacity: ρ = ⌊γ/2⌋ ; over: ρ = β + γ − cap − 1
        vectors = LineVectors(beta=(0, 2), gamma=(5, 3), inner_caps=(2, 2))
        # trap 1: 0+2 <= 2 → ρ = 2 ; trap 2: 2+1 > 2 → 2+3−2−1 = 2
        assert vectors.excess() == (2, 2)

    def test_excess_tokens_total(self):
        vectors = LineVectors(beta=(0, 2), gamma=(5, 3), inner_caps=(2, 2))
        assert line_excess_tokens(vectors) == 4


class TestStabiliseLine:
    def test_empty_line(self):
        vectors = LineVectors(beta=(0, 0), gamma=(0, 0), inner_caps=(2, 2))
        final, surplus = stabilise_line(vectors)
        assert surplus == 0
        assert final.beta == (0, 0) and final.gamma == (0, 0)

    def test_solved_line_is_fixed_point(self):
        vectors = LineVectors(beta=(2, 2), gamma=(1, 1), inner_caps=(2, 2))
        final, surplus = stabilise_line(vectors)
        assert surplus == 0
        assert final == vectors

    def test_flow_through_full_line(self):
        # everything at the entrance gate of a 2-trap line, caps 2
        vectors = LineVectors(beta=(0, 0), gamma=(0, 8), inner_caps=(2, 2))
        final, surplus = stabilise_line(vectors)
        # entrance trap keeps 2 inner + 0 gate; forwards 4; exit trap
        # keeps 2 inner; releases 2; gates: γ = y mod 2
        assert final.beta == (2, 2)
        assert surplus + final.num_agents == 8

    def test_deficit_matches_definition(self):
        vectors = LineVectors(beta=(0, 1), gamma=(1, 0), inner_caps=(2, 2))
        final, surplus = stabilise_line(vectors)
        assert line_deficit(vectors) == final.capacity - final.num_agents
        assert line_surplus(vectors) == surplus


class TestGlobalQuantities:
    protocol = LineOfTrapsProtocol(m=2)

    def test_solved_configuration_all_zero(self):
        counts = self.protocol.solved_configuration().counts_list()
        assert global_surplus(self.protocol, counts) == 0
        assert global_deficit(self.protocol, counts) == 0
        assert global_excess(self.protocol, counts) == 0

    def test_lemma10_identity_on_random_configurations(self):
        """Lemma 10: s(C) = d(C) for every configuration."""
        for seed in range(10):
            config = random_configuration(self.protocol, seed=seed)
            counts = config.counts_list()
            assert global_surplus(self.protocol, counts) == global_deficit(
                self.protocol, counts
            )

    def test_surplus_bounded_by_excess(self):
        """§4.2: s(C) <= r(C) (each released agent is a handled token)."""
        for seed in range(10):
            config = random_configuration(self.protocol, seed=seed)
            counts = config.counts_list()
            assert global_surplus(self.protocol, counts) <= global_excess(
                self.protocol, counts
            )

    def test_line_vectors_extraction(self):
        counts = self.protocol.solved_configuration().counts_list()
        vectors = line_vectors(self.protocol, counts, 0)
        assert vectors.num_traps == self.protocol.traps_per_line
        assert vectors.beta == (2,) * 6
        assert vectors.gamma == (1,) * 6

    def test_indicated_lines_solved(self):
        """Every line is indicated in the solved configuration."""
        counts = self.protocol.solved_configuration().counts_list()
        assert all(indicated_lines(self.protocol, counts))

    def test_indicated_lines_empty(self):
        """No line is indicated when everyone sits in X."""
        counts = [0] * self.protocol.num_states
        counts[self.protocol.x_state] = self.protocol.num_agents
        assert not any(indicated_lines(self.protocol, counts))

    def test_excess_decreases_to_zero_over_run(self):
        """r(C) hits 0 exactly at the silent configuration."""
        start = random_configuration(self.protocol, seed=4)
        engine = JumpEngine(self.protocol, start, np.random.default_rng(4))
        engine.run()
        assert global_excess(self.protocol, engine.counts) == 0
