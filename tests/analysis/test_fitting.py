"""Unit tests for power-law fitting."""

import numpy as np
import pytest

from repro.analysis.fitting import (
    bootstrap_exponent_interval,
    fit_power_law,
)
from repro.exceptions import ExperimentError


class TestFitPowerLaw:
    def test_exact_quadratic(self):
        xs = [10, 20, 40, 80]
        ys = [3 * x**2 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(2.0, abs=1e-9)
        assert fit.coefficient == pytest.approx(3.0, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0, abs=1e-9)

    def test_exact_linear(self):
        xs = [2, 4, 8, 16]
        fit = fit_power_law(xs, [5.0 * x for x in xs])
        assert fit.exponent == pytest.approx(1.0, abs=1e-9)

    def test_log_correction_recovers_polynomial_part(self):
        xs = [16, 64, 256, 1024]
        ys = [2 * x * np.log(x) for x in xs]
        fit = fit_power_law(xs, ys, log_correction=1.0)
        assert fit.exponent == pytest.approx(1.0, abs=1e-9)
        assert fit.log_correction == 1.0

    def test_noisy_data_r_squared_below_one(self):
        rng = np.random.default_rng(0)
        xs = [10, 20, 40, 80, 160]
        ys = [x**1.5 * float(rng.uniform(0.8, 1.2)) for x in xs]
        fit = fit_power_law(xs, ys)
        assert 1.2 < fit.exponent < 1.8
        assert 0 < fit.r_squared <= 1

    def test_predict(self):
        fit = fit_power_law([2, 4, 8], [12, 48, 192])  # 3·x²
        assert fit.predict(16) == pytest.approx(768, rel=1e-6)

    def test_predict_with_log_correction(self):
        xs = [16, 64, 256]
        fit = fit_power_law(xs, [x * np.log(x) for x in xs], log_correction=1.0)
        assert fit.predict(64) == pytest.approx(64 * np.log(64), rel=1e-6)

    def test_describe_mentions_exponent(self):
        fit = fit_power_law([2, 4], [4, 16])
        assert "n^2.00" in fit.describe()

    def test_input_validation(self):
        with pytest.raises(ExperimentError):
            fit_power_law([1, 2], [1])
        with pytest.raises(ExperimentError):
            fit_power_law([2], [4])
        with pytest.raises(ExperimentError):
            fit_power_law([0, 2], [1, 2])
        with pytest.raises(ExperimentError):
            fit_power_law([2, 4], [0, 1])
        with pytest.raises(ExperimentError):
            fit_power_law([1, 2], [1, 2], log_correction=1.0)


class TestBootstrap:
    def test_interval_brackets_true_exponent(self):
        rng = np.random.default_rng(1)
        xs = list(range(10, 200, 20))
        ys = [x**2 * float(rng.uniform(0.95, 1.05)) for x in xs]
        lo, hi = bootstrap_exponent_interval(xs, ys, num_resamples=300, seed=2)
        assert lo <= 2.0 <= hi
        assert hi - lo < 0.5

    def test_needs_three_points(self):
        with pytest.raises(ExperimentError):
            bootstrap_exponent_interval([2, 4], [4, 16])

    def test_deterministic_given_seed(self):
        xs = [10, 20, 40, 80]
        ys = [x**1.5 for x in xs]
        a = bootstrap_exponent_interval(xs, ys, num_resamples=50, seed=5)
        b = bootstrap_exponent_interval(xs, ys, num_resamples=50, seed=5)
        assert a == b
