"""Unit tests for the sweep runner."""

import pytest

from repro import AGProtocol, k_distant_configuration
from repro.analysis.sweep import measure_stabilisation, run_sweep
from repro.exceptions import ExperimentError


def _builder(params, rng):
    protocol = AGProtocol(int(params["n"]))
    return protocol, k_distant_configuration(protocol, 2, seed=rng)


class TestRunSweep:
    def test_point_and_run_counts(self):
        points = run_sweep(
            [{"n": 8}, {"n": 12}], _builder, repetitions=3, seed=0
        )
        assert len(points) == 2
        assert all(len(p.runs) == 3 for p in points)
        assert points[0].params == {"n": 8}

    def test_all_runs_silent(self):
        points = run_sweep([{"n": 10}], _builder, repetitions=4, seed=1)
        assert points[0].all_silent
        assert all(r.final_configuration.is_ranked(10) for r in points[0].runs)

    def test_reproducible_from_root_seed(self):
        a = run_sweep([{"n": 10}], _builder, repetitions=3, seed=7)
        b = run_sweep([{"n": 10}], _builder, repetitions=3, seed=7)
        assert a[0].interaction_counts == b[0].interaction_counts

    def test_repetitions_are_independent(self):
        points = run_sweep([{"n": 16}], _builder, repetitions=6, seed=3)
        assert len(set(points[0].interaction_counts)) > 1

    def test_summaries(self):
        point = run_sweep([{"n": 10}], _builder, repetitions=5, seed=2)[0]
        summary = point.time_summary()
        assert summary.count == 5
        assert point.median_parallel_time() == summary.median
        assert point.max_parallel_time() == summary.maximum
        assert summary.minimum <= summary.median <= summary.maximum

    def test_budget_marks_non_silent(self):
        points = run_sweep(
            [{"n": 24}], _builder, repetitions=2, seed=0, max_interactions=5
        )
        assert not points[0].all_silent

    def test_invalid_repetitions(self):
        with pytest.raises(ExperimentError):
            run_sweep([{"n": 8}], _builder, repetitions=0)


class TestParallelSweep:
    @staticmethod
    def _fingerprint(points):
        """Everything stochastic about a sweep (wall time excluded)."""
        return [
            (
                point.params,
                [
                    (
                        run.silent,
                        run.interactions,
                        run.events,
                        run.final_configuration.counts_list(),
                        run.protocol_name,
                    )
                    for run in point.runs
                ],
            )
            for point in points
        ]

    def test_workers_bit_identical_to_serial(self):
        kwargs = dict(repetitions=4, seed=11)
        serial = run_sweep([{"n": 10}, {"n": 14}], _builder, **kwargs)
        parallel = run_sweep(
            [{"n": 10}, {"n": 14}], _builder, workers=4, **kwargs
        )
        assert self._fingerprint(serial) == self._fingerprint(parallel)

    def test_workers_one_is_serial_path(self):
        a = run_sweep([{"n": 10}], _builder, repetitions=3, seed=2, workers=1)
        b = run_sweep([{"n": 10}], _builder, repetitions=3, seed=2)
        assert self._fingerprint(a) == self._fingerprint(b)

    def test_worker_count_does_not_change_results(self):
        two = run_sweep([{"n": 12}], _builder, repetitions=6, seed=9, workers=2)
        four = run_sweep([{"n": 12}], _builder, repetitions=6, seed=9, workers=4)
        assert self._fingerprint(two) == self._fingerprint(four)

    def test_invalid_workers(self):
        with pytest.raises(ExperimentError):
            run_sweep([{"n": 8}], _builder, repetitions=2, workers=0)


class TestMeasureStabilisation:
    def test_x_name_wiring(self):
        points = measure_stabilisation(
            _builder, [8, 12, 16], x_name="n", repetitions=2, seed=4
        )
        assert [p.params["n"] for p in points] == [8, 12, 16]

    def test_sequential_times_grow_with_n(self):
        points = measure_stabilisation(
            _builder, [8, 64], x_name="n", repetitions=3, seed=5
        )
        assert (
            points[1].median_parallel_time()
            > points[0].median_parallel_time()
        )
