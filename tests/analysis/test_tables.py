"""Unit tests for table rendering."""

import pytest

from repro.analysis.tables import Table, format_value


class TestFormatValue:
    def test_ints_get_separators(self):
        assert format_value(1234567) == "1,234,567"

    def test_bools_are_yes_no(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_floats_sig_figs(self):
        assert format_value(3.14159) == "3.142"
        assert format_value(0.5) == "0.5"

    def test_extreme_floats_scientific(self):
        assert "e" in format_value(1.5e7)
        assert "e" in format_value(1.5e-7)

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_strings_pass_through(self):
        assert format_value("abc") == "abc"


class TestTable:
    def _table(self):
        table = Table(title="T", headers=["a", "b"])
        table.add_row(1, 2.5)
        table.add_row(1000, "x")
        table.add_note("a note")
        return table

    def test_row_arity_checked(self):
        table = Table(title="T", headers=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_render_contains_everything(self):
        text = self._table().render()
        assert "T" in text
        assert "a" in text and "b" in text
        assert "1,000" in text
        assert "note: a note" in text

    def test_render_columns_aligned(self):
        lines = self._table().render().splitlines()
        header_line = next(l for l in lines if "a" in l and "|" in l)
        data_lines = [l for l in lines if l.strip().startswith(("1", "1,000"))]
        pipe = header_line.index("|")
        assert all(line.index("|") == pipe for line in data_lines)

    def test_markdown_shape(self):
        md = self._table().to_markdown()
        assert md.startswith("### T")
        assert "| a | b |" in md
        assert "|---|---|" in md
        assert "*a note*" in md

    def test_str_is_render(self):
        table = self._table()
        assert str(table) == table.render()
