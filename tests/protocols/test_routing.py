"""Unit tests for the cubic routing graph G (§4.2, Figure 1)."""

import math

import networkx as nx
import pytest

from repro import build_routing_graph
from repro.exceptions import ProtocolError


def _to_networkx(graph):
    g = nx.Graph()
    g.add_nodes_from(graph.vertices)
    g.add_edges_from(graph.edges())
    return g


class TestConstruction:
    def test_paper_worked_example(self):
        """Under Figure 1: for m²=16, line 1 has l0=2, l1=3, l2=8."""
        graph = build_routing_graph(16)
        assert graph.neighbours(1) == (2, 3, 8)

    def test_k4_special_case(self):
        graph = build_routing_graph(4)
        assert graph.num_vertices == 4
        assert graph.is_cubic()
        assert graph.diameter() == 1

    @pytest.mark.parametrize("m", [2, 4, 6, 8, 10])
    def test_cubic_for_even_squares(self, m):
        graph = build_routing_graph(m * m)
        assert graph.is_cubic()

    @pytest.mark.parametrize("m", [4, 6, 8, 10])
    def test_connected(self, m):
        graph = build_routing_graph(m * m)
        assert graph.is_connected()

    @pytest.mark.parametrize("m", [4, 6, 8, 10, 12])
    def test_diameter_bound(self, m):
        """Paper: G has diameter 4·⌈log m⌉."""
        graph = build_routing_graph(m * m)
        assert graph.diameter() <= 4 * math.ceil(math.log2(m))

    def test_odd_vertex_count_rejected(self):
        with pytest.raises(ProtocolError):
            build_routing_graph(9)

    def test_too_small_rejected(self):
        with pytest.raises(ProtocolError):
            build_routing_graph(2)

    def test_degenerate_six_rejected(self):
        with pytest.raises(ProtocolError):
            build_routing_graph(6)

    def test_neighbour_triples_sorted(self):
        graph = build_routing_graph(16)
        for v in graph.vertices:
            nbrs = graph.neighbours(v)
            assert nbrs == tuple(sorted(nbrs))

    def test_edge_count_matches_cubic(self):
        graph = build_routing_graph(36)
        assert len(graph.edges()) == 3 * 36 // 2

    def test_edges_symmetric(self):
        graph = build_routing_graph(16)
        for v in graph.vertices:
            for w in graph.neighbours(v):
                assert v in graph.neighbours(w)


class TestAgainstNetworkx:
    """Cross-validate our pure-python graph algorithms with networkx."""

    @pytest.mark.parametrize("m", [4, 6, 8])
    def test_diameter_matches_networkx(self, m):
        graph = build_routing_graph(m * m)
        assert graph.diameter() == nx.diameter(_to_networkx(graph))

    def test_connectivity_matches_networkx(self):
        graph = build_routing_graph(16)
        assert graph.is_connected() == nx.is_connected(_to_networkx(graph))

    def test_simple_graph_no_loops_or_multiedges(self):
        graph = build_routing_graph(64)
        g = _to_networkx(graph)
        assert nx.number_of_selfloops(g) == 0
        # every vertex degree exactly 3 in the simple graph
        assert all(d == 3 for __, d in g.degree())


class TestStructureRecipe:
    """The construction steps of the paper, re-checked on m=4."""

    def test_leaf_cycle_present(self):
        """Leaves of the tree G' (minus the merged one) form a cycle."""
        graph = build_routing_graph(16)
        g = _to_networkx(graph)
        # heap tree on 17 nodes: leaves are 9..17; 17 merged into 1
        cycle_leaves = list(range(9, 17))
        sub = g.subgraph(cycle_leaves)
        assert nx.is_connected(sub)
        assert all(d == 2 for __, d in sub.degree())

    def test_merged_vertex_inherits_tree_edge(self):
        """Vertex 1 picked up the merged leaf's edge to its parent (8)."""
        graph = build_routing_graph(16)
        assert 8 in graph.neighbours(1)
