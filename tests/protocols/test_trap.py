"""Unit tests for the agent trap gadget (§2.1, Facts 1–3, Lemma 1)."""

import numpy as np
import pytest

from repro import Configuration, JumpEngine, SingleTrapProtocol, run_protocol
from repro.protocols.trap import (
    TrapLayout,
    trap_gaps,
    trap_is_flat,
    trap_is_full,
    trap_is_saturated,
    trap_is_tidy,
    trap_surplus,
)
from repro.exceptions import ProtocolError


class TestTrapLayout:
    def test_basic_geometry(self):
        trap = TrapLayout(base=10, size=4)
        assert trap.gate == 10
        assert trap.top == 13
        assert list(trap.inner_states) == [11, 12, 13]
        assert list(trap.states) == [10, 11, 12, 13]

    def test_degenerate_single_state(self):
        trap = TrapLayout(base=0, size=1)
        assert trap.gate == trap.top == 0
        assert list(trap.inner_states) == []

    def test_contains_and_index(self):
        trap = TrapLayout(base=5, size=3)
        assert trap.contains(5) and trap.contains(7)
        assert not trap.contains(8)
        assert trap.inner_index(6) == 1
        with pytest.raises(ProtocolError):
            trap.inner_index(8)

    def test_invalid_size(self):
        with pytest.raises(ProtocolError):
            TrapLayout(base=0, size=0)


class TestTrapPredicates:
    trap = TrapLayout(base=0, size=4)  # gate 0, inner 1..3

    def test_gaps(self):
        assert trap_gaps([1, 1, 0, 1], self.trap) == 1
        assert trap_gaps([0, 0, 0, 0], self.trap) == 3

    def test_surplus(self):
        assert trap_surplus([1, 1, 1, 1], self.trap) == 0
        assert trap_surplus([3, 1, 1, 1], self.trap) == 2
        assert trap_surplus([0, 0, 1, 0], self.trap) == -3

    def test_saturated_and_full(self):
        assert trap_is_saturated([0, 1, 1, 1], self.trap)
        assert not trap_is_full([0, 1, 1, 1], self.trap)  # only 3 agents
        assert trap_is_full([1, 1, 1, 1], self.trap)
        assert trap_is_full([5, 1, 1, 1], self.trap)

    def test_flat(self):
        assert trap_is_flat([9, 1, 1, 0], self.trap)  # gate load irrelevant
        assert not trap_is_flat([0, 2, 1, 0], self.trap)

    def test_tidy(self):
        # overload above gap → tidy
        assert trap_is_tidy([0, 0, 1, 2], self.trap)
        # overload below gap → untidy
        assert not trap_is_tidy([0, 2, 0, 1], self.trap)
        # no overloads → always tidy
        assert trap_is_tidy([0, 0, 1, 0], self.trap)


class TestSingleTrapProtocol:
    def test_transition_rules(self):
        protocol = SingleTrapProtocol(inner_size=3, num_agents=5)
        # inner descent
        assert protocol.delta(2, 2) == (2, 1)
        # gate: keep one at top, release one
        assert protocol.delta(0, 0) == (3, protocol.exit_state)
        # exit state absorbing, cross-state null
        assert protocol.delta(4, 4) is None
        assert protocol.delta(1, 2) is None

    def test_degenerate_trap_rule(self):
        protocol = SingleTrapProtocol(inner_size=0, num_agents=3)
        # paper: m = 0 trap degenerates; gate keeps one agent in place
        assert protocol.delta(0, 0) == (0, protocol.exit_state)

    def test_fact1_gaps_stay_occupied(self):
        """Fact 1: once an inner state is occupied it stays occupied."""
        protocol = SingleTrapProtocol(inner_size=4, num_agents=9)
        counts = [0] * protocol.num_states
        counts[protocol.trap.top] = 9
        engine = JumpEngine(
            protocol, Configuration(counts), np.random.default_rng(0)
        )
        ever_occupied = set()
        while True:
            for state in protocol.trap.inner_states:
                if engine.counts[state] > 0:
                    ever_occupied.add(state)
            for state in ever_occupied:
                assert engine.counts[state] > 0, "Fact 1 violated"
            if engine.step() is None:
                break

    def test_fact3_fullness_absorbing(self):
        """Fact 3: once full, a trap stays full."""
        protocol = SingleTrapProtocol(inner_size=3, num_agents=8)
        counts = [0] * protocol.num_states
        counts[protocol.trap.top] = 8
        engine = JumpEngine(
            protocol, Configuration(counts), np.random.default_rng(1)
        )
        was_full = False
        while True:
            full = trap_is_full(engine.counts, protocol.trap)
            if was_full:
                assert full, "Fact 3 violated"
            was_full = was_full or full
            if engine.step() is None:
                break
        assert was_full  # 8 agents >> size 4: the trap must fill

    def test_fact2_saturation_arithmetic(self):
        """Fact 2: 2d arrivals saturate d gaps (gate ejects every other)."""
        protocol = SingleTrapProtocol(inner_size=3, num_agents=6)
        # d = 3 gaps, 6 agents at the gate → exactly enough to saturate
        counts = [0] * protocol.num_states
        counts[protocol.trap.gate] = 6
        result = run_protocol(protocol, Configuration(counts), seed=3)
        assert result.silent
        final = result.final_configuration.counts_list()
        assert trap_is_saturated(final, protocol.trap)

    def test_surplus_eventually_released(self):
        protocol = SingleTrapProtocol(inner_size=4, num_agents=5 + 3)
        counts = [0] * protocol.num_states
        counts[protocol.trap.top] = 8  # size-5 trap + surplus 3
        result = run_protocol(protocol, Configuration(counts), seed=4)
        assert result.silent
        assert protocol.released(result.final_configuration) == 3
        # trap retains exactly one agent per state
        final = result.final_configuration
        assert all(final.count(s) == 1 for s in protocol.trap.states)

    def test_silent_configuration_shape(self):
        """Silence ⟺ no state holds 2+ agents (exit state may hold many)."""
        protocol = SingleTrapProtocol(inner_size=2, num_agents=7)
        counts = [0] * protocol.num_states
        counts[protocol.trap.top] = 7
        result = run_protocol(protocol, Configuration(counts), seed=5)
        final = result.final_configuration.counts_list()
        assert all(final[s] <= 1 for s in protocol.trap.states)
        assert final[protocol.exit_state] == 7 - 3

    def test_negative_inner_size_rejected(self):
        with pytest.raises(ProtocolError):
            SingleTrapProtocol(inner_size=-1, num_agents=4)

    def test_labels(self):
        protocol = SingleTrapProtocol(inner_size=2, num_agents=4)
        assert protocol.state_label(0) == "gate"
        assert protocol.state_label(1) == "inner1"
        assert protocol.state_label(3) == "exit"
