"""Unit tests for the isolated single line (§4.1 testbed)."""

import pytest

from repro import run_protocol
from repro.protocols.line import IsolatedLineProtocol
from repro.analysis.potentials import LineVectors, stabilise_line
from repro.exceptions import ProtocolError


class TestLayout:
    def test_state_count(self):
        protocol = IsolatedLineProtocol(num_traps=4, inner_cap=3, num_agents=10)
        assert protocol.num_states == 4 * 4 + 1
        assert protocol.release_state == 16

    def test_trap_ordering_exit_first(self):
        protocol = IsolatedLineProtocol(num_traps=3, inner_cap=2, num_agents=5)
        assert protocol.trap(1).base == 0
        assert protocol.entrance_gate == protocol.trap(3).gate

    def test_invalid_parameters(self):
        with pytest.raises(ProtocolError):
            IsolatedLineProtocol(num_traps=0, inner_cap=2, num_agents=5)
        with pytest.raises(ProtocolError):
            IsolatedLineProtocol(num_traps=2, inner_cap=-1, num_agents=5)

    def test_trap_index_bounds(self):
        protocol = IsolatedLineProtocol(num_traps=2, inner_cap=1, num_agents=4)
        with pytest.raises(ProtocolError):
            protocol.trap(0)
        with pytest.raises(ProtocolError):
            protocol.trap(3)


class TestRules:
    protocol = IsolatedLineProtocol(num_traps=3, inner_cap=2, num_agents=6)

    def test_inner_descent(self):
        state = self.protocol.trap(2).base + 2
        assert self.protocol.delta(state, state) == (state, state - 1)

    def test_gate_forwards_toward_exit(self):
        gate3 = self.protocol.trap(3).gate
        assert self.protocol.delta(gate3, gate3) == (
            self.protocol.trap(3).top,
            self.protocol.trap(2).gate,
        )

    def test_exit_gate_releases(self):
        gate1 = self.protocol.trap(1).gate
        assert self.protocol.delta(gate1, gate1) == (
            self.protocol.trap(1).top,
            self.protocol.release_state,
        )

    def test_release_state_absorbing(self):
        r = self.protocol.release_state
        assert self.protocol.delta(r, r) is None


class TestConfigurationBuilder:
    def test_vectors_realised(self):
        protocol = IsolatedLineProtocol(num_traps=3, inner_cap=2, num_agents=7)
        config = protocol.configuration_from_vectors(
            beta=[2, 1, 0], gamma=[1, 3, 0]
        )
        counts = config.counts_list()
        assert counts[protocol.trap(1).gate] == 1
        assert sum(counts[s] for s in protocol.trap(1).inner_states) == 2
        assert counts[protocol.trap(2).gate] == 3

    def test_builder_is_tidy_packing(self):
        protocol = IsolatedLineProtocol(num_traps=1, inner_cap=3, num_agents=5)
        config = protocol.configuration_from_vectors(beta=[5], gamma=[0])
        counts = config.counts_list()
        # bottom-up: 1,1,3 across inner states (overload on top)
        assert [counts[s] for s in protocol.trap(1).inner_states] == [1, 1, 3]

    def test_wrong_agent_total_rejected(self):
        protocol = IsolatedLineProtocol(num_traps=2, inner_cap=2, num_agents=5)
        with pytest.raises(ProtocolError):
            protocol.configuration_from_vectors(beta=[1, 1], gamma=[1, 1])

    def test_wrong_vector_length_rejected(self):
        protocol = IsolatedLineProtocol(num_traps=2, inner_cap=2, num_agents=4)
        with pytest.raises(ProtocolError):
            protocol.configuration_from_vectors(beta=[4], gamma=[0])


class TestLemma5ClosedForm:
    """Simulation must match the schedule-independent closed form."""

    @pytest.mark.parametrize(
        "beta,gamma",
        [
            ((0, 0, 0), (0, 0, 9)),     # all at entrance gate
            ((2, 2, 2), (1, 1, 1)),     # solved-ish
            ((3, 0, 0), (0, 4, 2)),     # overloads and gaps
            ((2, 1, 0), (1, 3, 0)),
            ((0, 0, 0), (3, 3, 3)),
        ],
    )
    def test_final_vectors_and_surplus(self, beta, gamma):
        inner_cap = 2
        num_agents = sum(beta) + sum(gamma)
        protocol = IsolatedLineProtocol(
            num_traps=3, inner_cap=inner_cap, num_agents=num_agents
        )
        start = protocol.configuration_from_vectors(beta, gamma)
        expected_final, expected_surplus = stabilise_line(
            LineVectors(beta=beta, gamma=gamma, inner_caps=(inner_cap,) * 3)
        )
        for seed in range(3):  # several schedules, same outcome
            result = run_protocol(protocol, start, seed=seed)
            assert result.silent
            counts = result.final_configuration.counts_list()
            assert counts[protocol.release_state] == expected_surplus
            for a in range(1, 4):
                trap = protocol.trap(a)
                assert counts[trap.gate] == expected_final.gamma[a - 1]
                inner_total = sum(counts[s] for s in trap.inner_states)
                assert inner_total == expected_final.beta[a - 1]
