"""Unit tests for the leader-election wrapper."""

import pytest

from repro import (
    AGProtocol,
    Configuration,
    RingOfTrapsProtocol,
    TreeRankingProtocol,
    count_leaders,
    elect_leader,
    random_configuration,
)


class TestCountLeaders:
    def test_counts_rank_zero(self):
        protocol = AGProtocol(5)
        assert count_leaders(protocol, Configuration([3, 1, 1, 0, 0])) == 3
        assert count_leaders(protocol, Configuration([0, 2, 1, 1, 1])) == 0


class TestElectLeader:
    @pytest.mark.parametrize(
        "protocol",
        [AGProtocol(10), RingOfTrapsProtocol(m=3), TreeRankingProtocol(10, k=3)],
        ids=lambda p: p.name,
    )
    def test_unique_leader_elected(self, protocol):
        start = random_configuration(protocol, seed=8)
        outcome = elect_leader(protocol, start, seed=8)
        assert outcome.unique_leader
        assert outcome.run.silent
        assert outcome.election_parallel_time == outcome.run.parallel_time
        assert outcome.interactions == outcome.run.interactions

    def test_budget_exhaustion_reported(self):
        protocol = AGProtocol(32)
        start = Configuration.all_in_state(0, 32, 32)
        outcome = elect_leader(protocol, start, seed=0, max_interactions=5)
        assert not outcome.unique_leader
        assert not outcome.run.silent

    def test_already_elected(self):
        protocol = AGProtocol(6)
        outcome = elect_leader(protocol, Configuration([1] * 6), seed=0)
        assert outcome.unique_leader
        assert outcome.interactions == 0

    def test_sequential_engine(self):
        protocol = AGProtocol(8)
        start = Configuration.all_in_state(2, 8, 8)
        outcome = elect_leader(protocol, start, seed=1, engine="sequential")
        assert outcome.unique_leader

    def test_leader_is_stable_across_reruns(self):
        """Silence is absorbing: re-running from the final configuration
        changes nothing (the 'silent' guarantee)."""
        protocol = RingOfTrapsProtocol(m=3)
        start = random_configuration(protocol, seed=2)
        first = elect_leader(protocol, start, seed=2)
        again = elect_leader(protocol, first.run.final_configuration, seed=3)
        assert again.interactions == 0
        assert again.unique_leader
