"""Unit tests for perfectly balanced binary trees (§5, Figure 2)."""

import math

import pytest

from repro import NodeKind, PerfectlyBalancedTree
from repro.exceptions import ProtocolError


class TestFigure2:
    """The n=9 instance drawn in the paper."""

    tree = PerfectlyBalancedTree(9)

    def test_root_is_branching_with_children_1_and_5(self):
        assert self.tree.kind(0) == NodeKind.BRANCHING
        assert self.tree.left_child(0) == 1
        assert self.tree.right_child(0) == 5

    def test_unary_spine_nodes(self):
        for node, child in [(1, 2), (5, 6)]:
            assert self.tree.kind(node) == NodeKind.NON_BRANCHING
            assert self.tree.left_child(node) == child
            assert self.tree.right_child(node) == -1

    def test_inner_branching_nodes(self):
        assert self.tree.children(2) == [3, 4]
        assert self.tree.children(6) == [7, 8]

    def test_leaves(self):
        assert self.tree.leaves == [3, 4, 7, 8]

    def test_height(self):
        assert self.tree.height == 3


class TestRecursiveDefinition:
    def test_size_one_is_leaf(self):
        tree = PerfectlyBalancedTree(1)
        assert tree.kind(0) == NodeKind.LEAF
        assert tree.height == 0

    def test_even_root_is_non_branching(self):
        for n in (2, 4, 6, 100):
            assert PerfectlyBalancedTree(n).kind(0) == NodeKind.NON_BRANCHING

    def test_odd_root_is_branching(self):
        for n in (3, 5, 9, 101):
            assert PerfectlyBalancedTree(n).kind(0) == NodeKind.BRANCHING

    def test_branching_children_identical_subtrees(self):
        tree = PerfectlyBalancedTree(25)
        for node in range(25):
            if tree.kind(node) == NodeKind.BRANCHING and tree.subtree_size(node) > 1:
                left = tree.left_child(node)
                right = tree.right_child(node)
                assert tree.subtree_size(left) == tree.subtree_size(right)

    def test_preorder_child_formula(self):
        """Children of branching p are p+1 and p+l+1 (paper's numbering)."""
        tree = PerfectlyBalancedTree(33)
        for node in range(33):
            kind = tree.kind(node)
            if kind == NodeKind.BRANCHING:
                half = (tree.subtree_size(node) - 1) // 2
                assert tree.left_child(node) == node + 1
                assert tree.right_child(node) == node + half + 1
            elif kind == NodeKind.NON_BRANCHING:
                assert tree.left_child(node) == node + 1

    def test_invalid_size(self):
        with pytest.raises(ProtocolError):
            PerfectlyBalancedTree(0)


class TestPaperProperties:
    """Properties (1) and (2) stated in §5."""

    @pytest.mark.parametrize("n", [2, 3, 7, 9, 16, 33, 100, 1234])
    def test_levels_uniform(self, n):
        """All nodes at the same level have the same kind and size."""
        tree = PerfectlyBalancedTree(n)
        for level_nodes in tree.iter_levels():
            signatures = {
                (tree.kind(p), tree.subtree_size(p)) for p in level_nodes
            }
            assert len(signatures) <= 1

    @pytest.mark.parametrize("n", [2, 3, 9, 64, 100, 999, 4096, 100001])
    def test_height_bound(self, n):
        """h <= 2·log2(n)."""
        tree = PerfectlyBalancedTree(n)
        assert tree.height <= 2 * math.log2(n)

    @pytest.mark.parametrize("n", [1, 2, 9, 40, 127])
    def test_preorder_is_bijection(self, n):
        """Every node id in [0, n) appears exactly once in the traversal."""
        tree = PerfectlyBalancedTree(n)
        visited = []

        def visit(p):
            visited.append(p)
            for c in tree.children(p):
                visit(c)

        visit(0)
        assert sorted(visited) == list(range(n))

    @pytest.mark.parametrize("n", [1, 2, 9, 40, 127])
    def test_subtree_sizes_consistent(self, n):
        tree = PerfectlyBalancedTree(n)
        for p in range(n):
            children_total = sum(tree.subtree_size(c) for c in tree.children(p))
            assert tree.subtree_size(p) == 1 + children_total

    @pytest.mark.parametrize("n", [2, 9, 40, 127])
    def test_parent_pointers(self, n):
        tree = PerfectlyBalancedTree(n)
        assert tree.parent(0) == -1
        for p in range(n):
            for c in tree.children(p):
                assert tree.parent(c) == p


class TestPaths:
    def test_root_to_leaf_path(self):
        tree = PerfectlyBalancedTree(9)
        assert tree.root_to_leaf_path(7) == [0, 5, 6, 7]

    def test_path_rejects_internal_node(self):
        tree = PerfectlyBalancedTree(9)
        with pytest.raises(ProtocolError):
            tree.root_to_leaf_path(1)

    def test_all_paths_have_height_length(self):
        """Perfect balance: every root-to-leaf path has h+1 nodes."""
        tree = PerfectlyBalancedTree(100)
        lengths = {
            len(tree.root_to_leaf_path(leaf)) for leaf in tree.leaves
        }
        assert lengths == {tree.height + 1}

    def test_repr(self):
        assert "size=9" in repr(PerfectlyBalancedTree(9))
