"""Unit tests for the ring-of-traps protocol (§3)."""

import pytest

from repro import (
    Configuration,
    RingOfTrapsProtocol,
    k_distant_configuration,
    run_protocol,
)
from repro.protocols.ring import ring_parameter_for
from repro.exceptions import ProtocolError


class TestParameterSelection:
    def test_exact_lattice(self):
        assert ring_parameter_for(20) == 4  # 4·5 = 20

    def test_between_lattices_rounds_up(self):
        assert ring_parameter_for(21) == 5  # 5·6 = 30 ≥ 21

    def test_tiny_population(self):
        assert ring_parameter_for(2) == 1

    def test_too_small_rejected(self):
        with pytest.raises(ProtocolError):
            ring_parameter_for(1)


class TestLayout:
    def test_exact_lattice_layout(self):
        protocol = RingOfTrapsProtocol(m=4)
        assert protocol.num_agents == 20
        assert protocol.num_states == 20
        assert protocol.num_extra_states == 0
        assert protocol.num_traps == 4
        assert all(t.size == 5 for t in protocol.traps)

    def test_states_partition_into_traps(self):
        protocol = RingOfTrapsProtocol(m=5)
        seen = []
        for trap in protocol.traps:
            seen.extend(trap.states)
        assert seen == list(range(protocol.num_states))

    def test_shrunken_layout_total(self):
        protocol = RingOfTrapsProtocol(num_agents=17)  # m=4 lattice is 20
        assert protocol.num_states == 17
        assert protocol.num_traps == 4
        assert sum(t.size for t in protocol.traps) == 17
        assert all(t.size >= 1 for t in protocol.traps)

    def test_trap_of_state(self):
        protocol = RingOfTrapsProtocol(m=3)
        for index, trap in enumerate(protocol.traps):
            for state in trap.states:
                assert protocol.trap_of(state) == index

    def test_m_and_agents_consistency_enforced(self):
        with pytest.raises(ProtocolError):
            RingOfTrapsProtocol(num_agents=25, m=4)  # 4·5 = 20 < 25

    def test_requires_some_parameter(self):
        with pytest.raises(ProtocolError):
            RingOfTrapsProtocol()

    def test_label(self):
        protocol = RingOfTrapsProtocol(m=3)
        assert protocol.state_label(0) == "(0,0)"
        assert protocol.state_label(4) == "(1,0)"


class TestTransitionFunction:
    def test_inner_rule(self):
        protocol = RingOfTrapsProtocol(m=3)
        trap1 = protocol.trap(1)
        state = trap1.base + 2
        assert protocol.delta(state, state) == (state, state - 1)

    def test_gate_rule_forwards_around_ring(self):
        protocol = RingOfTrapsProtocol(m=3)
        for a in range(3):
            gate = protocol.trap(a).gate
            next_gate = protocol.trap((a + 1) % 3).gate
            assert protocol.delta(gate, gate) == (protocol.trap(a).top, next_gate)

    def test_last_trap_wraps_to_first(self):
        protocol = RingOfTrapsProtocol(m=4)
        gate = protocol.trap(3).gate
        assert protocol.delta(gate, gate)[1] == protocol.trap(0).gate

    def test_exactly_n_rules(self):
        protocol = RingOfTrapsProtocol(m=3)
        n = protocol.num_states
        productive = [
            (i, j) for i in range(n) for j in range(n)
            if protocol.delta(i, j) is not None
        ]
        assert productive == [(i, i) for i in range(n)]

    def test_rules_stay_within_state_space(self):
        protocol = RingOfTrapsProtocol(num_agents=17)  # shrunken traps
        for s in range(protocol.num_states):
            out = protocol.delta(s, s)
            assert out is not None
            assert 0 <= out[0] < protocol.num_states
            assert 0 <= out[1] < protocol.num_states


class TestStabilisation:
    @pytest.mark.parametrize("m", [1, 2, 3, 4])
    def test_from_pileup(self, m):
        protocol = RingOfTrapsProtocol(m=m)
        n = protocol.num_agents
        result = run_protocol(
            protocol, Configuration.all_in_state(0, n, n), seed=m,
        )
        assert result.silent
        assert protocol.is_ranked(result.final_configuration)

    @pytest.mark.parametrize("k", [0, 1, 3, 7])
    def test_from_k_distant(self, k):
        protocol = RingOfTrapsProtocol(m=4)
        start = k_distant_configuration(protocol, k, seed=k)
        result = run_protocol(protocol, start, seed=k)
        assert result.silent
        assert protocol.is_ranked(result.final_configuration)

    def test_shrunken_ring_stabilises(self):
        protocol = RingOfTrapsProtocol(num_agents=17)
        start = Configuration.all_in_state(5, 17, 17)
        result = run_protocol(protocol, start, seed=17)
        assert result.silent
        assert protocol.is_ranked(result.final_configuration)

    def test_silent_iff_ranked(self):
        protocol = RingOfTrapsProtocol(m=3)
        assert protocol.is_silent(protocol.solved_configuration())
        near = protocol.solved_configuration().with_move(3, 4)
        assert not protocol.is_silent(near)
