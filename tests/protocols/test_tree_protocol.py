"""Unit tests for the tree ranking protocol (§5, rules R1–R5)."""

import pytest

from repro import (
    Configuration,
    TreeDispersalProtocol,
    TreeRankingProtocol,
    all_in_extras_configuration,
    random_configuration,
    run_protocol,
)
from repro.protocols.tree_protocol import default_line_half_length
from repro.exceptions import ProtocolError


class TestConstruction:
    def test_extra_state_count(self):
        protocol = TreeRankingProtocol(50, k=5)
        assert protocol.num_extra_states == 10
        assert protocol.k == 5

    def test_default_k_is_logarithmic(self):
        assert default_line_half_length(2) >= 2
        assert default_line_half_length(1024) == 20
        protocol = TreeRankingProtocol(1024)
        assert protocol.num_extra_states == 40

    def test_invalid_k(self):
        with pytest.raises(ProtocolError):
            TreeRankingProtocol(10, k=0)

    def test_line_state_indexing(self):
        protocol = TreeRankingProtocol(10, k=3)
        assert protocol.line_state(1) == 10
        assert protocol.line_state(6) == 15
        assert protocol.line_index(12) == 3
        with pytest.raises(ProtocolError):
            protocol.line_state(7)
        with pytest.raises(ProtocolError):
            protocol.line_index(5)

    def test_red_green_split(self):
        protocol = TreeRankingProtocol(10, k=3)
        reds = [s for s in protocol.line_states if protocol.is_red(s)]
        greens = [s for s in protocol.line_states if protocol.is_green(s)]
        assert reds == [10, 11, 12]
        assert greens == [13, 14, 15]


class TestRules:
    protocol = TreeRankingProtocol(9, k=2)  # ranks 0..8, X1..X4 = 9..12

    def test_r1_non_branching(self):
        # node 1 is non-branching in the n=9 tree
        assert self.protocol.delta(1, 1) == (1, 2)

    def test_r1_branching_both_vacate(self):
        # node 0 branches to 1 and 5
        assert self.protocol.delta(0, 0) == (1, 5)

    def test_r2_leaf_reset(self):
        leaf = self.protocol.tree.leaves[0]
        x1 = self.protocol.line_state(1)
        assert self.protocol.delta(leaf, leaf) == (x1, x1)

    def test_r3_line_progression(self):
        x = self.protocol.line_state
        assert self.protocol.delta(x(1), x(3)) == (x(2), x(2))
        assert self.protocol.delta(x(2), x(2)) == (x(3), x(3))
        # initiator above responder: null
        assert self.protocol.delta(x(3), x(1)) is None

    def test_r3_top_is_excluded(self):
        x = self.protocol.line_state
        # i = 2k has no R3 rule; (2k, 2k) is R5
        assert self.protocol.delta(x(4), x(4)) == (0, 0)
        assert self.protocol.delta(x(4), x(2)) is None

    def test_r4_red_resets_both(self):
        x = self.protocol.line_state
        assert self.protocol.delta(x(1), 4) == (x(1), x(1))
        assert self.protocol.delta(x(2), 0) == (x(1), x(1))

    def test_r4_green_moves_to_root(self):
        x = self.protocol.line_state
        assert self.protocol.delta(x(3), 4) == (0, 4)
        assert self.protocol.delta(x(4), 7) == (0, 7)

    def test_rank_initiator_with_line_responder_is_null(self):
        x = self.protocol.line_state
        assert self.protocol.delta(4, x(1)) is None

    def test_distinct_ranks_null(self):
        assert self.protocol.delta(3, 4) is None

    def test_labels(self):
        assert self.protocol.state_label(0) == "rank0"
        assert self.protocol.state_label(9) == "X1"


class TestStabilisation:
    @pytest.mark.parametrize("n", [2, 3, 5, 9, 16, 33])
    def test_random_starts_rank(self, n):
        protocol = TreeRankingProtocol(n, k=3)
        start = random_configuration(protocol, seed=n)
        result = run_protocol(protocol, start, seed=n)
        assert result.silent
        assert protocol.is_ranked(result.final_configuration)

    def test_all_in_extras_recovers(self):
        protocol = TreeRankingProtocol(12, k=3)
        start = all_in_extras_configuration(protocol, seed=1)
        result = run_protocol(protocol, start, seed=1)
        assert result.silent
        assert protocol.is_ranked(result.final_configuration)

    def test_leaf_pileup_triggers_reset_and_recovers(self):
        protocol = TreeRankingProtocol(17, k=3)
        leaf = protocol.tree.leaves[-1]
        start = Configuration.all_in_state(leaf, 17, protocol.num_states)
        result = run_protocol(protocol, start, seed=2)
        assert result.silent
        assert protocol.is_ranked(result.final_configuration)

    @pytest.mark.parametrize("k", [1, 2, 6])
    def test_stabilises_for_any_line_length(self, k):
        """Stability holds for every k (whp speed needs k = Θ(log n))."""
        protocol = TreeRankingProtocol(8, k=k)
        start = random_configuration(protocol, seed=k)
        result = run_protocol(protocol, start, seed=k)
        assert result.silent
        assert protocol.is_ranked(result.final_configuration)

    def test_odd_population_in_line_does_not_deadlock(self):
        """An odd number of agents stuck on the line must still exit
        (R4-green handles the straggler once any rank is occupied)."""
        protocol = TreeRankingProtocol(7, k=2)
        start = all_in_extras_configuration(protocol, seed=3)
        result = run_protocol(protocol, start, seed=3)
        assert result.silent
        assert protocol.is_ranked(result.final_configuration)

    def test_silent_iff_ranked(self):
        protocol = TreeRankingProtocol(9, k=2)
        assert protocol.is_silent(protocol.solved_configuration())
        # a lone agent on the line keeps the protocol live
        live = protocol.solved_configuration().with_move(
            3, protocol.line_state(4)
        )
        assert not protocol.is_silent(live)


class TestTreeDispersal:
    def test_leaf_pairs_are_dead_ends(self):
        protocol = TreeDispersalProtocol(9)
        leaf = protocol.tree.leaves[0]
        assert protocol.delta(leaf, leaf) is None

    @pytest.mark.parametrize("n", [2, 5, 9, 20, 64])
    def test_lemma19_perfect_dispersal_from_root(self, n):
        """Lemma 19: all agents at the root rank perfectly under R1."""
        protocol = TreeDispersalProtocol(n)
        start = Configuration.all_in_state(0, n, n)
        result = run_protocol(protocol, start, seed=n)
        assert result.silent
        assert protocol.is_ranked(result.final_configuration)

    def test_not_self_stabilising_without_reset(self):
        """Ablation: a leaf pile-up goes silent *incorrectly* under R1
        alone — exactly the failure mode R2–R5 exist to repair."""
        protocol = TreeDispersalProtocol(9)
        leaf = protocol.tree.leaves[0]
        start = Configuration.all_in_state(leaf, 9, 9)
        result = run_protocol(protocol, start, seed=1)
        assert result.silent
        assert not protocol.is_ranked(result.final_configuration)

    def test_no_extra_states(self):
        assert TreeDispersalProtocol(9).num_extra_states == 0
