"""Unit tests for the modified (all-green) tree protocol (Thm 3 proof).

The modified protocol is a *proof device*: it matches the real protocol
until a red agent touches the tree, stabilises from balanced
configurations, and — crucially — is **not** self-stabilising in
general.  The tests pin down all three behaviours; the last one is the
ablation demonstrating why the red reset phase exists.
"""

import pytest

from repro import (
    Configuration,
    ModifiedTreeProtocol,
    TreeRankingProtocol,
    run_protocol,
)


class TestModifiedRules:
    protocol = ModifiedTreeProtocol(9, k=2)

    def test_r4_always_green(self):
        x = self.protocol.line_state
        # red indices behave green in the modified protocol
        assert self.protocol.delta(x(1), 4) == (0, 4)
        assert self.protocol.delta(x(2), 7) == (0, 7)
        assert self.protocol.delta(x(3), 4) == (0, 4)

    def test_other_rules_unchanged(self):
        original = TreeRankingProtocol(9, k=2)
        for si in range(self.protocol.num_states):
            for sj in range(self.protocol.num_states):
                if si >= 9 and sj < 9:
                    continue  # R4 is the only difference
                assert self.protocol.delta(si, sj) == original.delta(si, sj)

    def test_coupling_until_red_contact(self):
        """The real and modified protocols differ exactly on
        (red line state, rank) pairs — the coupling of the Thm 3 proof."""
        real = TreeRankingProtocol(9, k=2)
        modified = ModifiedTreeProtocol(9, k=2)
        differing = [
            (si, sj)
            for si in range(real.num_states)
            for sj in range(real.num_states)
            if real.delta(si, sj) != modified.delta(si, sj)
        ]
        assert differing == [
            (si, sj)
            for si in range(real.num_states)
            for sj in range(real.num_states)
            if real.is_red(si) and sj < real.num_ranks
        ]

    def test_name(self):
        assert "ModifiedTree" in self.protocol.name


class TestBalancedStabilisation:
    """The half of the coupling the proof uses: balanced starts rank."""

    @pytest.mark.parametrize("n", [5, 9, 17])
    def test_solved_is_silent(self, n):
        protocol = ModifiedTreeProtocol(n, k=3)
        assert protocol.is_silent(protocol.solved_configuration())

    @pytest.mark.parametrize("n", [5, 9, 17])
    def test_all_at_root_ranks(self, n):
        """All agents at the root is balanced (Lemma 19 dispersal)."""
        protocol = ModifiedTreeProtocol(n, k=3)
        start = Configuration.all_in_state(0, n, protocol.num_states)
        result = run_protocol(protocol, start, seed=n)
        assert result.silent
        assert protocol.is_ranked(result.final_configuration)

    def test_all_on_line_ranks(self):
        """Everyone on the line drains to the root, then disperses —
        balanced, so the modified protocol finishes the job."""
        protocol = ModifiedTreeProtocol(9, k=2)
        start = Configuration.all_in_state(
            protocol.line_state(1), 9, protocol.num_states
        )
        result = run_protocol(protocol, start, seed=3)
        assert result.silent
        assert protocol.is_ranked(result.final_configuration)


class TestNotSelfStabilising:
    """The ablation: without red resets, unbalanced starts can livelock.

    With n = 3 (root + two leaves) and both agents of a pair on a leaf,
    the modified protocol cycles forever: R2 sends the pair to the line,
    the pair re-enters at the root, and R1 dumps both agents back onto
    the two leaves — the ranked configuration is unreachable.  The real
    protocol with its red phase ranks the same start easily.
    """

    def _unbalanced_start(self, protocol):
        counts = [0] * protocol.num_states
        counts[1] = 2  # leaf 1 doubled
        counts[2] = 1  # leaf 2 single, root empty
        return Configuration(counts)

    def test_modified_livelocks(self):
        protocol = ModifiedTreeProtocol(3, k=1)
        start = self._unbalanced_start(protocol)
        result = run_protocol(
            protocol, start, seed=0, max_interactions=200_000
        )
        assert not result.silent  # still churning after a huge budget

    def test_real_protocol_ranks_the_same_start(self):
        protocol = TreeRankingProtocol(3, k=1)
        start = self._unbalanced_start(protocol)
        result = run_protocol(protocol, start, seed=0)
        assert result.silent
        assert protocol.is_ranked(result.final_configuration)

    def test_livelock_configurations_form_a_cycle(self):
        """Exhaustively verify the n=3 reachability argument: the silent
        configuration is not reachable from the unbalanced start."""
        protocol = ModifiedTreeProtocol(3, k=1)
        start = self._unbalanced_start(protocol)
        solved = protocol.solved_configuration().as_tuple()
        seen = set()
        frontier = [start.as_tuple()]
        while frontier:
            counts = frontier.pop()
            if counts in seen:
                continue
            seen.add(counts)
            for si in range(protocol.num_states):
                if counts[si] == 0:
                    continue
                for sj in range(protocol.num_states):
                    available = counts[sj] - (1 if si == sj else 0)
                    if available <= 0:
                        continue
                    out = protocol.delta(si, sj)
                    if out is None:
                        continue
                    nxt = list(counts)
                    nxt[si] -= 1
                    nxt[sj] -= 1
                    nxt[out[0]] += 1
                    nxt[out[1]] += 1
                    frontier.append(tuple(nxt))
        assert solved not in seen
        assert len(seen) > 1  # it moves, it just never ranks
