"""Unit tests for the AG baseline protocol."""

import pytest

from repro import AGProtocol, Configuration, run_protocol
from repro.exceptions import ProtocolError


class TestStructure:
    def test_state_space_is_exactly_n_ranks(self):
        protocol = AGProtocol(7)
        assert protocol.num_states == 7
        assert protocol.num_extra_states == 0
        assert list(protocol.rank_states) == list(range(7))

    def test_minimum_population(self):
        with pytest.raises(ProtocolError):
            AGProtocol(1)

    def test_labels(self):
        assert AGProtocol(3).state_label(2) == "rank2"

    def test_name(self):
        assert AGProtocol(3).name == "AG"


class TestTransitionFunction:
    def test_same_state_rule(self):
        protocol = AGProtocol(5)
        assert protocol.delta(2, 2) == (2, 3)

    def test_wraparound(self):
        protocol = AGProtocol(5)
        assert protocol.delta(4, 4) == (4, 0)

    def test_distinct_states_null(self):
        protocol = AGProtocol(5)
        assert protocol.delta(1, 2) is None
        assert protocol.delta(4, 0) is None

    def test_exactly_n_rules(self):
        """§2: every state-optimal ranking protocol has exactly n rules."""
        protocol = AGProtocol(9)
        rules = [
            (i, j)
            for i in range(9)
            for j in range(9)
            if protocol.delta(i, j) is not None
        ]
        assert rules == [(i, i) for i in range(9)]

    def test_initiator_never_moves(self):
        protocol = AGProtocol(6)
        for s in range(6):
            out_i, __ = protocol.delta(s, s)
            assert out_i == s


class TestStabilisation:
    @pytest.mark.parametrize("n", [2, 3, 5, 8, 16])
    def test_all_in_one_state_ranks(self, n):
        protocol = AGProtocol(n)
        result = run_protocol(
            protocol, Configuration.all_in_state(0, n, n), seed=n
        )
        assert result.silent
        assert protocol.is_ranked(result.final_configuration)

    def test_already_solved_needs_zero_interactions(self):
        protocol = AGProtocol(6)
        result = run_protocol(protocol, Configuration([1] * 6), seed=0)
        assert result.silent and result.interactions == 0

    def test_silent_iff_ranked(self):
        protocol = AGProtocol(4)
        assert protocol.is_silent(Configuration([1, 1, 1, 1]))
        assert not protocol.is_silent(Configuration([2, 0, 1, 1]))

    def test_quadratic_growth_between_two_sizes(self):
        """One coarse Θ(n²) spot check (full sweep lives in benchmarks)."""
        times = {}
        for n in (16, 64):
            runs = [
                run_protocol(
                    AGProtocol(n), Configuration.all_in_state(0, n, n), seed=s
                ).parallel_time
                for s in range(3)
            ]
            times[n] = sorted(runs)[1]
        ratio = times[64] / times[16]
        # n grew 4×; Θ(n²) predicts ~16×; allow a generous band
        assert 6 < ratio < 40
