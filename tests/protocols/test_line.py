"""Unit tests for the line-of-traps protocol (§4)."""

import pytest

from repro import (
    Configuration,
    LineOfTrapsProtocol,
    line_lattice_size,
    line_parameter_for,
    random_configuration,
    run_protocol,
)
from repro.exceptions import ProtocolError


class TestParameters:
    def test_lattice_sizes(self):
        assert line_lattice_size(2) == 72
        assert line_lattice_size(4) == 960

    def test_parameter_for_exact(self):
        assert line_parameter_for(72) == 2
        assert line_parameter_for(960) == 4

    def test_parameter_for_scattered(self):
        # 72 + up to 2·24 = 120 still fits m=2
        assert line_parameter_for(100) == 2

    def test_gap_rejected(self):
        with pytest.raises(ProtocolError):
            line_parameter_for(500)  # between m=2 (≤120) and m=4 (≥960)

    def test_too_small_rejected(self):
        with pytest.raises(ProtocolError):
            line_parameter_for(10)

    def test_odd_m_rejected(self):
        with pytest.raises(ProtocolError):
            LineOfTrapsProtocol(m=3)


class TestLayout:
    protocol = LineOfTrapsProtocol(m=2)

    def test_counts(self):
        assert self.protocol.num_agents == 72
        assert self.protocol.num_states == 73
        assert self.protocol.num_extra_states == 1
        assert self.protocol.num_lines == 4
        assert self.protocol.traps_per_line == 6

    def test_states_partition_into_lines(self):
        seen = []
        for line in range(self.protocol.num_lines):
            seen.extend(self.protocol.line_states(line))
        assert seen == list(range(72))

    def test_traps_partition_lines(self):
        for line in range(self.protocol.num_lines):
            states = []
            for a in range(1, self.protocol.traps_per_line + 1):
                states.extend(self.protocol.trap(line, a).states)
            assert states == list(self.protocol.line_states(line))

    def test_entrance_and_exit_gates(self):
        assert self.protocol.exit_gate(0) == self.protocol.trap(0, 1).gate
        assert (
            self.protocol.entrance_gate(0)
            == self.protocol.trap(0, 6).gate
        )

    def test_line_of_state(self):
        for line in range(4):
            for state in self.protocol.line_states(line):
                assert self.protocol.line_of_state(state) == line

    def test_scattered_population(self):
        protocol = LineOfTrapsProtocol(num_agents=100)
        assert protocol.m == 2
        assert protocol.num_agents == 100
        assert sum(t.size for t in protocol.line_traps(0)) + sum(
            t.size for t in protocol.line_traps(1)
        ) + sum(t.size for t in protocol.line_traps(2)) + sum(
            t.size for t in protocol.line_traps(3)
        ) == 100

    def test_trap_index_bounds(self):
        with pytest.raises(ProtocolError):
            self.protocol.trap(0, 0)
        with pytest.raises(ProtocolError):
            self.protocol.trap(0, 7)

    def test_labels(self):
        assert self.protocol.state_label(self.protocol.x_state) == "X"
        assert self.protocol.state_label(0) == "(1,1,0)"


class TestPointing:
    def test_traps_point_to_graph_neighbours(self):
        protocol = LineOfTrapsProtocol(m=4)
        graph = protocol.routing_graph
        for line in range(protocol.num_lines):
            expected = tuple(v - 1 for v in graph.neighbours(line + 1))
            pointed = {
                protocol.pointed_line(line, a)
                for a in range(1, protocol.traps_per_line + 1)
            }
            assert pointed == set(expected)

    def test_all_states_of_a_trap_point_alike(self):
        """§4.2: 'all states belonging to one trap direct agents to the
        same line' — check via the routing rule itself."""
        protocol = LineOfTrapsProtocol(m=2)
        x = protocol.x_state
        for line in range(protocol.num_lines):
            for a in range(1, protocol.traps_per_line + 1):
                trap = protocol.trap(line, a)
                targets = {
                    protocol.delta(state, x)[1] for state in trap.states
                }
                assert len(targets) == 1

    def test_thirds_rule(self):
        """Traps a in (im, (i+1)m] point to neighbour i."""
        protocol = LineOfTrapsProtocol(m=2)
        graph = protocol.routing_graph
        for line in range(protocol.num_lines):
            nbrs = tuple(v - 1 for v in graph.neighbours(line + 1))
            for a in range(1, 7):
                i = (a - 1) // 2
                assert protocol.pointed_line(line, a) == nbrs[i]


class TestTransitionFunction:
    protocol = LineOfTrapsProtocol(m=2)

    def test_inner_rule(self):
        trap = self.protocol.trap(1, 3)
        state = trap.base + 2
        assert self.protocol.delta(state, state) == (state, state - 1)

    def test_gate_rule_moves_down_the_line(self):
        trap3 = self.protocol.trap(2, 3)
        trap2 = self.protocol.trap(2, 2)
        assert self.protocol.delta(trap3.gate, trap3.gate) == (
            trap3.top,
            trap2.gate,
        )

    def test_exit_gate_releases_to_x(self):
        exit_trap = self.protocol.trap(1, 1)
        assert self.protocol.delta(exit_trap.gate, exit_trap.gate) == (
            exit_trap.top,
            self.protocol.x_state,
        )

    def test_x_meets_x_routes_to_line_one(self):
        x = self.protocol.x_state
        assert self.protocol.delta(x, x) == (
            x,
            self.protocol.entrance_gate(0),
        )

    def test_routing_rule_initiator_unchanged(self):
        x = self.protocol.x_state
        state = self.protocol.trap(3, 5).base + 1
        out = self.protocol.delta(state, x)
        assert out[0] == state
        target_line = self.protocol.pointed_line(3, 5)
        assert out[1] == self.protocol.entrance_gate(target_line)

    def test_x_initiator_with_rank_responder_null(self):
        assert self.protocol.delta(self.protocol.x_state, 5) is None

    def test_distinct_ranks_null(self):
        assert self.protocol.delta(3, 4) is None


class TestStabilisation:
    def test_random_start(self):
        protocol = LineOfTrapsProtocol(m=2)
        start = random_configuration(protocol, seed=4)
        result = run_protocol(protocol, start, seed=4)
        assert result.silent
        assert protocol.is_ranked(result.final_configuration)

    def test_all_in_x(self):
        protocol = LineOfTrapsProtocol(m=2)
        start = Configuration.all_in_state(
            protocol.x_state, 72, protocol.num_states
        )
        result = run_protocol(protocol, start, seed=5)
        assert result.silent
        assert protocol.is_ranked(result.final_configuration)

    def test_pileup_on_exit_gate(self):
        protocol = LineOfTrapsProtocol(m=2)
        start = Configuration.all_in_state(
            protocol.exit_gate(0), 72, protocol.num_states
        )
        result = run_protocol(protocol, start, seed=6)
        assert result.silent
        assert protocol.is_ranked(result.final_configuration)

    def test_scattered_population_stabilises(self):
        protocol = LineOfTrapsProtocol(num_agents=90)
        start = random_configuration(protocol, seed=7)
        result = run_protocol(protocol, start, seed=7)
        assert result.silent
        assert protocol.is_ranked(result.final_configuration)

    def test_silent_iff_ranked(self):
        protocol = LineOfTrapsProtocol(m=2)
        assert protocol.is_silent(protocol.solved_configuration())
        # one agent moved onto X keeps the protocol live
        live = protocol.solved_configuration().with_move(
            10, protocol.x_state
        )
        assert not protocol.is_silent(live)
