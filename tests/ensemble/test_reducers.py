"""Online reducers: accuracy against batch references, determinism."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ensemble.reducers import (
    EnsembleAggregates,
    P2Quantile,
    RecoveryTable,
    SurvivalCurve,
    Welford,
)


class TestSurvivalCurve:
    def test_exact_exceedance_on_a_small_sample(self):
        curve = SurvivalCurve(grid=[0.0, 1.0, 2.0, 4.0])
        for value in (0.5, 1.0, 1.5, 3.0, 5.0):
            curve.update(value)
        data = curve.to_dict()
        assert data["count"] == 5
        assert data["grid"] == [0.0, 1.0, 2.0, 4.0]
        # exceed[i] = #{T > grid[i]}: strictly greater, so T == 1.0
        # does not exceed t = 1.0.
        assert data["exceed"] == [5, 3, 2, 1]
        assert data["survival"] == [1.0, 0.6, 0.4, 0.2]

    def test_survival_is_monotone_non_increasing(self):
        rng = np.random.default_rng(5)
        curve = SurvivalCurve()
        for value in rng.exponential(scale=40.0, size=500):
            curve.update(value)
        survival = curve.to_dict()["survival"]
        assert all(b <= a for a, b in zip(survival, survival[1:]))
        assert survival[0] == 1.0  # exponentials are all > 0

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False),
            min_size=1, max_size=200,
        )
    )
    def test_matches_batch_exceedance(self, values):
        curve = SurvivalCurve()
        for value in values:
            curve.update(value)
        data = curve.to_dict()
        for t, exceed in zip(data["grid"], data["exceed"]):
            assert exceed == sum(1 for v in values if v > t)

    def test_deterministic_and_order_independent_output(self):
        import json

        def build(order):
            curve = SurvivalCurve()
            for value in order:
                curve.update(value)
            return json.dumps(curve.to_dict(), sort_keys=True)

        values = list(np.random.default_rng(9).exponential(10.0, 100))
        assert build(values) == build(list(reversed(values)))

    def test_empty_curve(self):
        data = SurvivalCurve(grid=[1.0, 2.0]).to_dict()
        assert data["count"] == 0
        assert data["exceed"] == [0, 0]
        assert data["survival"] == [0.0, 0.0]

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            SurvivalCurve(grid=[])
        with pytest.raises(ValueError):
            SurvivalCurve(grid=[0.0, 1.0, 1.0])
        with pytest.raises(ValueError):
            SurvivalCurve(grid=[2.0, 1.0])

    def test_default_grid_spans_protocol_recovery_times(self):
        grid = SurvivalCurve.DEFAULT_GRID
        assert grid[0] == 0.0
        assert grid[1] == 0.25
        assert grid[-1] > 2.5e5
        assert all(b > a for a, b in zip(grid, grid[1:]))


class TestWelford:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
            min_size=1, max_size=200,
        )
    )
    def test_matches_numpy(self, values):
        welford = Welford()
        for value in values:
            welford.update(value)
        assert welford.count == len(values)
        assert welford.mean == pytest.approx(np.mean(values), rel=1e-9,
                                             abs=1e-6)
        if len(values) > 1:
            assert welford.variance == pytest.approx(
                np.var(values, ddof=1), rel=1e-6, abs=1e-4
            )
        assert welford.minimum == min(values)
        assert welford.maximum == max(values)

    def test_empty(self):
        welford = Welford()
        assert welford.count == 0
        assert welford.variance == 0.0
        assert welford.to_dict()["min"] is None


class TestP2Quantile:
    def test_exact_for_small_samples(self):
        quantile = P2Quantile(0.5)
        for value in (5.0, 1.0, 3.0):
            quantile.update(value)
        assert quantile.value == 3.0

    def test_empty_is_none(self):
        assert P2Quantile(0.9).value is None

    def test_rejects_degenerate_p(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    @pytest.mark.parametrize("p", [0.5, 0.9, 0.99])
    def test_close_to_numpy_percentile_on_large_stream(self, p):
        rng = np.random.default_rng(42)
        values = rng.exponential(scale=100.0, size=20_000)
        quantile = P2Quantile(p)
        for value in values:
            quantile.update(value)
        exact = float(np.percentile(values, p * 100.0))
        # P² is an approximation; a few percent on a heavy-ish tail.
        assert quantile.value == pytest.approx(exact, rel=0.05)

    def test_deterministic_fold(self):
        rng = np.random.default_rng(7)
        values = rng.normal(size=5_000)
        first, second = P2Quantile(0.9), P2Quantile(0.9)
        for value in values:
            first.update(value)
        for value in values:
            second.update(value)
        assert first.value == second.value


def _record(run, recovered=True, events=100, interactions=1000,
            phases=None):
    return {
        "run": run,
        "recovered_all": recovered,
        "total_events": events,
        "total_interactions": interactions,
        "total_parallel_time": interactions / 10.0,
        "phases": phases if phases is not None else [],
    }


def _phases(recovered=True):
    return [
        {"kind": "run", "label": "stabilise", "num_agents": 10,
         "interactions": 500, "events": 60, "silent": True},
        {"kind": "fault", "label": "corrupt 20%", "num_agents": 10,
         "interactions": 0, "events": 0, "silent": False},
        {"kind": "run", "label": "recover", "num_agents": 10,
         "interactions": 400, "events": 40, "silent": recovered},
    ]


class TestRecoveryTable:
    def test_pairs_faults_with_next_run_phase(self):
        table = RecoveryTable()
        table.update(_phases(recovered=True))
        table.update(_phases(recovered=False))
        data = table.to_dict()
        row = data["corrupt 20%"]
        assert row["count"] == 2
        assert row["recovered"] == 1
        assert row["unrecovered"] == 1
        assert row["parallel_time"]["count"] == 1
        assert row["parallel_time"]["mean"] == pytest.approx(40.0)
        # The survival curve sees exactly the recovered recovery times:
        # one observation of 40.0, which exceeds every grid point < 40.
        assert row["survival"]["count"] == 1
        grid = row["survival"]["grid"]
        expected = [1 if 40.0 > t else 0 for t in grid]
        assert row["survival"]["exceed"] == expected

    def test_trailing_fault_counts_as_unrecovered(self):
        table = RecoveryTable()
        table.update(
            [
                {"kind": "fault", "label": "late crash", "num_agents": 10,
                 "interactions": 0, "events": 0, "silent": False},
            ]
        )
        row = table.to_dict()["late crash"]
        assert row["count"] == 1 and row["unrecovered"] == 1


class TestEnsembleAggregates:
    def test_streaming_fold(self):
        aggregates = EnsembleAggregates()
        for run in range(10):
            aggregates.update(
                _record(run, recovered=run % 2 == 0, events=run * 10,
                        interactions=run * 100, phases=_phases())
            )
        aggregates.update({"run": 10, "failed": True, "kind": "crash",
                           "error": "BrokenProcessPool", "message": "",
                           "attempts": 3})
        data = aggregates.to_dict()
        assert data["runs"] == 10
        assert data["failed_jobs"] == 1
        assert data["recovered_all"]["count"] == 5
        assert data["recovered_all"]["fraction"] == 0.5
        assert data["total_events"]["count"] == 10
        assert data["total_events"]["mean"] == pytest.approx(45.0)
        assert data["recovery"]["corrupt 20%"]["count"] == 10

    def test_deterministic_output(self):
        import json

        def build():
            aggregates = EnsembleAggregates()
            for run in range(50):
                aggregates.update(
                    _record(run, events=run, interactions=run * 7,
                            phases=_phases(recovered=run % 3 != 0))
                )
            return aggregates.to_dict()

        assert json.dumps(build(), sort_keys=True) == json.dumps(
            build(), sort_keys=True
        )
