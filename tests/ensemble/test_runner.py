"""Ensemble runner: manifests, atomic persistence, resume, bit-identity."""

import json
import os

import pytest

from repro.ensemble import ensemble_status, run_ensemble
from repro.ensemble.manifest import (
    atomic_write_json,
    create_manifest,
    done_marker_path,
    file_sha256,
    load_manifest,
    save_manifest,
    shard_path,
)
from repro.exceptions import ExperimentError


class TestManifest:
    def test_shards_cover_total_exactly(self):
        manifest = create_manifest("c", "smoke", 0, 25, 10, None)
        spans = [(s["start"], s["stop"]) for s in manifest["shards"]]
        assert spans == [(0, 10), (10, 20), (20, 25)]
        assert all(s["status"] == "pending" for s in manifest["shards"])

    def test_validation(self):
        with pytest.raises(ExperimentError):
            create_manifest("c", "smoke", 0, 0, 10, None)
        with pytest.raises(ExperimentError):
            create_manifest("c", "smoke", 0, 10, 0, None)

    def test_atomic_write_is_deterministic(self, tmp_path):
        path = str(tmp_path / "x.json")
        atomic_write_json(path, {"b": 2, "a": 1})
        first = open(path, "rb").read()
        atomic_write_json(path, {"a": 1, "b": 2})
        assert open(path, "rb").read() == first
        assert not [
            name for name in os.listdir(tmp_path)
            if name.startswith(".tmp-")
        ]

    def test_load_rejects_missing_and_corrupt(self, tmp_path):
        with pytest.raises(ExperimentError, match="no ensemble manifest"):
            load_manifest(str(tmp_path))
        (tmp_path / "manifest.json").write_text("{not json")
        with pytest.raises(ExperimentError, match="corrupt"):
            load_manifest(str(tmp_path))

    def test_load_rejects_inconsistent_shards(self, tmp_path):
        manifest = create_manifest("c", "smoke", 0, 20, 10, None)
        manifest["shards"][1]["start"] = 5
        save_manifest(str(tmp_path), manifest)
        with pytest.raises(ExperimentError, match="inconsistent shard"):
            load_manifest(str(tmp_path))


class TestRunEnsemble:
    CAMPAIGN = "ag_corrupt_recover"

    def _run(self, out_dir, **overrides):
        kwargs = dict(
            campaign_id=self.CAMPAIGN,
            scale="smoke",
            total_runs=12,
            shard_size=5,
            seed=17,
            workers=None,
        )
        kwargs.update(overrides)
        return run_ensemble(str(out_dir), **kwargs)

    def test_fresh_run_produces_complete_directory(self, tmp_path):
        aggregate = self._run(tmp_path / "a")
        assert aggregate["aggregates"]["runs"] == 12
        assert aggregate["aggregates"]["failed_jobs"] == 0
        status = ensemble_status(str(tmp_path / "a"))
        assert status["complete"] and status["has_aggregates"]
        assert status["shards_done"] == 3

    def test_shard_records_carry_no_wall_clock(self, tmp_path):
        self._run(tmp_path / "a")
        payload = json.load(open(shard_path(str(tmp_path / "a"), 0)))
        for record in payload["records"]:
            assert "wall_time_s" not in record
            for phase in record["phases"]:
                assert "wall_time_s" not in phase

    def test_refuses_to_overwrite_without_resume(self, tmp_path):
        self._run(tmp_path / "a")
        with pytest.raises(ExperimentError, match="already holds"):
            self._run(tmp_path / "a")

    def test_resume_rejects_contradicting_parameters(self, tmp_path):
        self._run(tmp_path / "a")
        with pytest.raises(ExperimentError, match="campaign"):
            run_ensemble(
                str(tmp_path / "a"), campaign_id="tree_corrupt_recover",
                resume=True,
            )
        with pytest.raises(ExperimentError, match="runs"):
            run_ensemble(str(tmp_path / "a"), total_runs=99, resume=True)

    def test_fresh_run_requires_campaign(self, tmp_path):
        with pytest.raises(ExperimentError, match="campaign id"):
            run_ensemble(str(tmp_path / "a"))

    def test_resume_recomputes_only_the_gap_bit_identically(self, tmp_path):
        reference = self._run(tmp_path / "ref")
        self._run(tmp_path / "int")
        out = str(tmp_path / "int")
        # Simulate a crash: lose the aggregate, corrupt shard 1,
        # delete shard 2 — the manifest still says "done" for both.
        os.remove(os.path.join(out, "aggregates.json"))
        with open(shard_path(out, 1), "a") as handle:
            handle.write("trailing garbage")
        os.remove(shard_path(out, 2))
        untouched_sha = file_sha256(shard_path(out, 0))
        resumed = run_ensemble(out, resume=True)
        # Corrupt shard quarantined, not destroyed.
        assert os.path.exists(shard_path(out, 1) + ".corrupt")
        # Untouched shard neither recomputed nor rewritten.
        assert file_sha256(shard_path(out, 0)) == untouched_sha
        assert json.dumps(resumed, sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )
        ref_bytes = open(
            os.path.join(str(tmp_path / "ref"), "aggregates.json"), "rb"
        ).read()
        int_bytes = open(os.path.join(out, "aggregates.json"), "rb").read()
        assert ref_bytes == int_bytes

    def test_results_identical_across_worker_counts(self, tmp_path):
        serial = self._run(tmp_path / "serial", workers=None)
        pooled = self._run(tmp_path / "pooled", workers=2)
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            pooled, sort_keys=True
        )

    def test_status_on_partial_ensemble(self, tmp_path):
        out = str(tmp_path / "a")
        self._run(out)
        # Demote one shard to pending to fake an interrupted ensemble
        # (the commit marker is the authority, so it goes too).
        manifest = load_manifest(out)
        manifest["shards"][2]["status"] = "pending"
        manifest["shards"][2]["sha256"] = None
        save_manifest(out, manifest)
        os.unlink(done_marker_path(out, 2))
        status = ensemble_status(out)
        assert status["shards_done"] == 2
        assert status["runs_done"] == 10
        assert not status["complete"]


class TestStatusThroughput:
    CAMPAIGN = "ag_corrupt_recover"

    def _run(self, out_dir, **overrides):
        kwargs = dict(
            campaign_id=self.CAMPAIGN,
            scale="smoke",
            total_runs=9,
            shard_size=3,
            seed=17,
            workers=None,
        )
        kwargs.update(overrides)
        return run_ensemble(str(out_dir), **kwargs)

    def test_throughput_and_eta_from_shard_mtimes(self, tmp_path):
        out = str(tmp_path / "a")
        self._run(out)
        # Space the shard files one second apart so rates are exact.
        for index, offset in enumerate((0, 1, 2)):
            path = shard_path(out, index)
            os.utime(path, (1_000_000 + offset, 1_000_000 + offset))
        status = ensemble_status(out)
        rows = {row["index"]: row for row in status["shards"]}
        assert rows[0]["throughput_runs_per_s"] is None  # no predecessor
        assert rows[1]["throughput_runs_per_s"] == pytest.approx(3.0)
        assert rows[2]["throughput_runs_per_s"] == pytest.approx(3.0)
        # 6 runs over 2 seconds since the first completed shard.
        assert status["throughput_runs_per_s"] == pytest.approx(3.0)
        assert status["eta_s"] is None  # complete: nothing left to do

    def test_partial_ensemble_gets_an_eta(self, tmp_path):
        out = str(tmp_path / "a")
        self._run(out)
        manifest = load_manifest(out)
        manifest["shards"][2]["status"] = "pending"
        manifest["shards"][2]["sha256"] = None
        save_manifest(out, manifest)
        os.unlink(shard_path(out, 2))
        os.unlink(done_marker_path(out, 2))
        for index, offset in enumerate((0, 1)):
            path = shard_path(out, index)
            os.utime(path, (1_000_000 + offset, 1_000_000 + offset))
        status = ensemble_status(out)
        assert status["throughput_runs_per_s"] == pytest.approx(3.0)
        assert status["eta_s"] == pytest.approx(1.0)  # 3 runs at 3 runs/s

    def test_single_done_shard_has_no_rate(self, tmp_path):
        out = str(tmp_path / "a")
        self._run(out)
        manifest = load_manifest(out)
        for shard in manifest["shards"][1:]:
            shard["status"] = "pending"
            shard["sha256"] = None
            os.unlink(done_marker_path(out, shard["index"]))
        save_manifest(out, manifest)
        status = ensemble_status(out)
        assert status["throughput_runs_per_s"] is None
        assert status["eta_s"] is None


class TestObserverSeam:
    def test_shard_lifecycle_events_fire_in_order(self, tmp_path):
        events = []
        run_ensemble(
            str(tmp_path / "a"),
            campaign_id="ag_corrupt_recover",
            scale="smoke",
            total_runs=4,
            shard_size=2,
            seed=17,
            observer=lambda kind, fields: events.append((kind, fields)),
        )
        kinds = [kind for kind, _ in events]
        assert kinds == [
            "shard_start", "shard_commit", "shard_done",
            "shard_start", "shard_commit", "shard_done",
        ]
        starts = [f for k, f in events if k == "shard_start"]
        assert [(f["start"], f["stop"]) for f in starts] == [(0, 2), (2, 4)]
        commits = [f for k, f in events if k == "shard_commit"]
        assert all(len(f["sha256"]) == 64 for f in commits)
        done = [f for k, f in events if k == "shard_done"]
        assert all(f["quarantined"] == 0 for f in done)

    def test_observer_does_not_change_aggregates(self, tmp_path):
        plain = run_ensemble(
            str(tmp_path / "plain"),
            campaign_id="ag_corrupt_recover",
            scale="smoke", total_runs=4, shard_size=2, seed=17,
        )
        observed = run_ensemble(
            str(tmp_path / "observed"),
            campaign_id="ag_corrupt_recover",
            scale="smoke", total_runs=4, shard_size=2, seed=17,
            observer=lambda kind, fields: None,
        )
        assert json.dumps(plain, sort_keys=True) == json.dumps(
            observed, sort_keys=True
        )
