"""Cooperative ensembles: interleaved workers, steals, bit-identity."""

import json
import os

import pytest

from repro.analysis.supervision import ShutdownLatch
from repro.ensemble import (
    CooperativeWorker,
    create_manifest,
    create_manifest_exclusive,
    join_ensemble,
    run_ensemble,
)
from repro.ensemble.manifest import (
    done_marker_path,
    load_manifest,
    read_done_marker,
    save_manifest,
)
from repro.ensemble.runner import AGGREGATES_NAME
from repro.exceptions import ExperimentError

CAMPAIGN = "ag_corrupt_recover"
RUNS = 20
SHARD = 5
SEED = 23


def fresh_manifest(out_dir):
    os.makedirs(out_dir, exist_ok=True)
    manifest = create_manifest(CAMPAIGN, "smoke", SEED, RUNS, SHARD, None)
    save_manifest(out_dir, manifest)
    return manifest


def serial_reference(tmp_path):
    out = str(tmp_path / "serial")
    run_ensemble(
        out, campaign_id=CAMPAIGN, scale="smoke",
        total_runs=RUNS, shard_size=SHARD, seed=SEED,
    )
    with open(os.path.join(out, AGGREGATES_NAME), "rb") as handle:
        return handle.read()


def make_worker(out_dir, name, clock, events, ttl=10.0):
    return CooperativeWorker(
        out_dir,
        worker=name,
        ttl=ttl,
        clock=clock,
        sleep=lambda seconds: None,
        heartbeat=False,
        observer=lambda kind, fields: events.append((kind, dict(fields))),
    )


class TestInterleavedWorkers:
    def test_two_workers_drain_without_double_commit(self, tmp_path):
        reference = serial_reference(tmp_path)
        out = str(tmp_path / "coop")
        fresh_manifest(out)
        now = [0.0]
        events = []
        w1 = make_worker(out, "w1", lambda: now[0], events)
        w2 = make_worker(out, "w2", lambda: now[0], events)

        outcomes = []
        workers = [w1, w2]
        turn = 0
        while not all(
            read_done_marker(out, s["index"]) for s in w1.manifest["shards"]
        ):
            outcomes.append(workers[turn % 2].step())
            turn += 1
            assert turn < 50  # each step commits or abandons — must halt
        aggregate = w1.run()  # nothing pending: verify + finalise
        assert w2.run() is not None  # idempotent for the other worker too

        committed = [f["shard"] for k, f in events if k == "shard_commit"]
        assert sorted(committed) == [0, 1, 2, 3]  # exactly once each
        owners = {f["shard"]: f["owner"] for k, f in events
                  if k == "shard_commit"}
        assert set(owners.values()) == {"w1", "w2"}  # both actually worked
        assert aggregate["total_runs"] == RUNS
        with open(os.path.join(out, AGGREGATES_NAME), "rb") as handle:
            assert handle.read() == reference

    def test_deterministic_steal_schedule(self, tmp_path):
        reference = serial_reference(tmp_path)
        out = str(tmp_path / "coop")
        fresh_manifest(out)
        now = [0.0]
        events = []
        w1 = make_worker(out, "w1", lambda: now[0], events)
        w2 = make_worker(out, "w2", lambda: now[0], events)

        # Freeze w1 mid-compute on shard 0: its lease TTL elapses and
        # w2 steals the shard before w1 reaches its commit.
        compute = w1.plan.compute_shard
        hijacked = []

        def stall_then_compute(shard, observer):
            result = compute(shard, observer)
            if shard["index"] == 0 and not hijacked:
                hijacked.append(True)
                now[0] += 11.0  # TTL is 10 — w1's lease expires
                stolen = w2.manager.claim(0)
                assert stolen is not None
                assert stolen.token == 2  # fencing token moved on
            return result

        w1.plan.compute_shard = stall_then_compute
        assert w1.step() == "abandoned"  # renew sees the foreign token
        assert read_done_marker(out, 0) is None  # no commit under a lost lease

        # w2 now drains everything (reclaiming its own stolen lease).
        while w2.step() != "complete":
            pass
        aggregate = w2.run()
        assert aggregate is not None

        steals = [f for k, f in events if k == "lease_steal"]
        assert [(s["shard"], s["owner"], s["previous_owner"])
                for s in steals] == [(0, "w2", "w1")]
        committed = {f["shard"]: f["owner"] for k, f in events
                     if k == "shard_commit"}
        assert committed == {0: "w2", 1: "w2", 2: "w2", 3: "w2"}
        with open(os.path.join(out, AGGREGATES_NAME), "rb") as handle:
            assert handle.read() == reference


class TestJoinEnsemble:
    def test_join_bootstraps_and_completes_alone(self, tmp_path):
        reference = serial_reference(tmp_path)
        out = str(tmp_path / "coop")
        aggregate = join_ensemble(
            out, campaign_id=CAMPAIGN, scale="smoke",
            total_runs=RUNS, shard_size=SHARD, seed=SEED,
        )
        assert aggregate["total_runs"] == RUNS
        with open(os.path.join(out, AGGREGATES_NAME), "rb") as handle:
            assert handle.read() == reference

    def test_join_empty_directory_needs_a_campaign(self, tmp_path):
        with pytest.raises(ExperimentError, match="campaign id"):
            join_ensemble(str(tmp_path / "empty"))

    def test_join_rejects_contradicting_parameters(self, tmp_path):
        out = str(tmp_path / "coop")
        fresh_manifest(out)
        with pytest.raises(ExperimentError, match="campaign"):
            join_ensemble(out, campaign_id="tree_adversarial_mix")
        with pytest.raises(ExperimentError, match="runs"):
            join_ensemble(out, campaign_id=CAMPAIGN, total_runs=RUNS + 1)

    def test_join_resumes_a_half_finished_run_ensemble(self, tmp_path):
        # A dir half-drained by the classic runner is joinable: markers
        # say what is done, the joiner computes exactly the gap.
        out = str(tmp_path / "mixed")
        fresh_manifest(out)
        manifest = load_manifest(out)
        now = [0.0]
        events = []
        w0 = make_worker(out, "w0", lambda: now[0], events)
        assert w0.step() == "committed"  # shard 0 done the cooperative way
        del manifest
        aggregate = join_ensemble(out, worker="w1")
        assert aggregate is not None
        reference = serial_reference(tmp_path)
        with open(os.path.join(out, AGGREGATES_NAME), "rb") as handle:
            assert handle.read() == reference

    def test_shutdown_latch_stops_before_completion(self, tmp_path):
        out = str(tmp_path / "coop")
        fresh_manifest(out)
        latch = ShutdownLatch()
        latch.trip()
        assert join_ensemble(out, shutdown=latch) is None
        # Nothing was computed, nothing committed, no leases left.
        assert not any(
            name.endswith((".done", ".lease")) for name in os.listdir(out)
        )


class TestManifestBootstrapRace:
    def test_exclusive_creation_single_winner(self, tmp_path):
        out = str(tmp_path / "race")
        os.makedirs(out)
        manifest = create_manifest(CAMPAIGN, "smoke", SEED, RUNS, SHARD, None)
        wins = [create_manifest_exclusive(out, manifest) for _ in range(3)]
        assert wins == [True, False, False]
        assert load_manifest(out)["total_runs"] == RUNS


class TestReconcileBackfill:
    def test_markers_are_the_authority_over_the_manifest(self, tmp_path):
        out = str(tmp_path / "coop")
        fresh_manifest(out)
        now = [0.0]
        w1 = make_worker(out, "w1", lambda: now[0], [])
        while w1.step() != "complete":
            pass
        assert w1.run() is not None
        # The durable manifest agrees with the markers after finalise.
        manifest = load_manifest(out)
        assert all(s["status"] == "done" for s in manifest["shards"])
        for shard in manifest["shards"]:
            marker = read_done_marker(out, shard["index"])
            assert marker["sha256"] == shard["sha256"]
            assert marker["owner"] == "w1"

    def test_corrupt_shard_is_requeued_on_join(self, tmp_path):
        out = str(tmp_path / "coop")
        fresh_manifest(out)
        now = [0.0]
        w1 = make_worker(out, "w1", lambda: now[0], [])
        while w1.step() != "complete":
            pass
        assert w1.run() is not None
        # Flip a byte in shard 2; a fresh join must detect and recompute.
        from repro.ensemble.manifest import shard_path

        path = shard_path(out, 2)
        with open(path, "r+b") as handle:
            handle.seek(10)
            byte = handle.read(1)
            handle.seek(10)
            handle.write(b"X" if byte != b"X" else b"Y")
        messages = []
        aggregate = join_ensemble(out, progress=messages.append)
        assert aggregate is not None
        assert any("corrupt" in line for line in messages)
        assert os.path.exists(path + ".corrupt")
        assert read_done_marker(out, 2)["sha256"]


class TestShutdownLatch:
    def test_trip_and_context_manager(self):
        import signal

        latch = ShutdownLatch()
        assert not latch.requested
        before = signal.getsignal(signal.SIGTERM)
        with latch:
            assert signal.getsignal(signal.SIGTERM) == latch.trip
            latch.trip()
            assert latch.requested
        assert signal.getsignal(signal.SIGTERM) == before


def test_shard_commit_records_are_trace_valid(tmp_path):
    """Acceptance: lease/commit events pass trace schema validation."""
    from repro.obs import TraceWriter, validate_trace

    out = str(tmp_path / "coop")
    fresh_manifest(out)
    writer = TraceWriter(str(tmp_path / "t.jsonl"), source="test-join")
    now = [0.0]
    w1 = CooperativeWorker(
        out, worker="w1", ttl=10.0, clock=lambda: now[0],
        sleep=lambda s: None, heartbeat=False,
        observer=lambda kind, fields: writer.emit(kind, **fields),
    )
    while w1.step() != "complete":
        pass
    assert w1.run() is not None
    validate_trace(writer.records)
    kinds = {record["kind"] for record in writer.records}
    assert {"lease_claim", "shard_commit", "shard_start",
            "shard_done"} <= kinds
    assert json.loads(json.dumps(writer.records[0]))["source"] == "test-join"
