"""Shard leases: exclusive claims, expiry/steal, fencing, heartbeats."""

import json
import os
import time

import pytest

from repro.ensemble.lease import (
    LeaseHeartbeat,
    LeaseManager,
    lease_path,
    list_leases,
    worker_identity,
)
from repro.exceptions import ExperimentError


class FakeClock:
    """A mutable clock shared by every manager in a deterministic test."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def manager(out_dir, owner, clock, ttl=10.0, events=None):
    observer = None
    if events is not None:
        observer = lambda kind, fields: events.append((kind, dict(fields)))
    return LeaseManager(
        str(out_dir), owner=owner, ttl=ttl, clock=clock, observer=observer
    )


class TestClaim:
    def test_fresh_claim_wins_with_token_one(self, tmp_path, clock):
        events = []
        lease = manager(tmp_path, "w1", clock, events=events).claim(0)
        assert lease is not None
        assert (lease.owner, lease.token) == ("w1", 1)
        assert lease.deadline == 10.0
        assert os.path.exists(lease_path(str(tmp_path), 0))
        assert events == [
            ("lease_claim", {"shard": 0, "owner": "w1", "token": 1})
        ]

    def test_live_lease_blocks_other_workers(self, tmp_path, clock):
        assert manager(tmp_path, "w1", clock).claim(0) is not None
        clock.advance(5.0)  # inside the TTL
        assert manager(tmp_path, "w2", clock).claim(0) is None

    def test_expired_lease_is_stolen_with_bumped_token(self, tmp_path, clock):
        assert manager(tmp_path, "w1", clock).claim(0) is not None
        clock.advance(10.5)  # past the TTL
        events = []
        stolen = manager(tmp_path, "w2", clock, events=events).claim(0)
        assert stolen is not None
        assert (stolen.owner, stolen.token) == ("w2", 2)
        kinds = [kind for kind, _ in events]
        assert kinds == ["lease_expire", "lease_steal"]
        expire = dict(events[0][1])
        assert (expire["owner"], expire["token"]) == ("w1", 1)
        steal = dict(events[1][1])
        assert steal["previous_owner"] == "w1"
        assert (steal["owner"], steal["token"]) == ("w2", 2)

    def test_corrupt_lease_is_stealable(self, tmp_path, clock):
        path = lease_path(str(tmp_path), 3)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"torn')  # killed mid-exclusive-create
        lease = manager(tmp_path, "w2", clock).claim(3)
        assert lease is not None
        assert lease.token == 1  # corrupt reads as token 0

    def test_distinct_shards_are_independent(self, tmp_path, clock):
        w1 = manager(tmp_path, "w1", clock)
        w2 = manager(tmp_path, "w2", clock)
        assert w1.claim(0) is not None
        assert w2.claim(1) is not None
        assert w2.claim(0) is None

    def test_ttl_must_be_positive(self, tmp_path, clock):
        with pytest.raises(ExperimentError):
            LeaseManager(str(tmp_path), ttl=0.0, clock=clock)


class TestRenewRelease:
    def test_renew_extends_the_deadline(self, tmp_path, clock):
        w1 = manager(tmp_path, "w1", clock)
        lease = w1.claim(0)
        clock.advance(6.0)
        assert w1.renew(lease)
        assert lease.deadline == 16.0
        clock.advance(6.0)  # would be past the original deadline
        assert manager(tmp_path, "w2", clock).claim(0) is None

    def test_renew_after_steal_is_the_fencing_signal(self, tmp_path, clock):
        w1 = manager(tmp_path, "w1", clock)
        lease = w1.claim(0)
        clock.advance(10.5)
        assert manager(tmp_path, "w2", clock).claim(0) is not None
        assert not w1.renew(lease)

    def test_release_removes_only_our_lease(self, tmp_path, clock):
        w1 = manager(tmp_path, "w1", clock)
        lease = w1.claim(0)
        w1.release(lease)
        assert not os.path.exists(lease_path(str(tmp_path), 0))
        # After a steal, the stale handle must not release the thief's.
        lease = w1.claim(0)
        clock.advance(10.5)
        assert manager(tmp_path, "w2", clock).claim(0) is not None
        w1.release(lease)
        assert os.path.exists(lease_path(str(tmp_path), 0))


class TestListLeases:
    def test_annotates_liveness(self, tmp_path, clock):
        manager(tmp_path, "w1", clock).claim(0)
        clock.advance(10.5)
        manager(tmp_path, "w2", clock).claim(1)
        rows = list_leases(str(tmp_path), clock=clock)
        assert [(r["shard"], r["owner"], r["expired"]) for r in rows] == [
            (0, "w1", True),
            (1, "w2", False),
        ]
        assert rows[1]["expires_in_s"] == pytest.approx(10.0)

    def test_empty_and_missing_directories(self, tmp_path, clock):
        assert list_leases(str(tmp_path), clock=clock) == []
        assert list_leases(str(tmp_path / "nope"), clock=clock) == []


class TestWorkerIdentity:
    def test_unique_even_for_one_process(self):
        assert worker_identity() != worker_identity()
        assert str(os.getpid()) in worker_identity()


class TestHeartbeat:
    def test_heartbeat_renews_until_stopped(self, tmp_path):
        w1 = LeaseManager(str(tmp_path), owner="w1", ttl=0.4)
        lease = w1.claim(0)
        beat = LeaseHeartbeat(w1, lease, interval=0.05).start()
        try:
            time.sleep(0.8)  # several TTLs — only renewal keeps it alive
            assert not beat.lost.is_set()
            w2 = LeaseManager(str(tmp_path), owner="w2", ttl=0.4)
            assert w2.claim(0) is None  # still live
        finally:
            beat.stop()

    def test_heartbeat_flags_a_stolen_lease(self, tmp_path):
        w1 = LeaseManager(str(tmp_path), owner="w1", ttl=0.4)
        lease = w1.claim(0)
        beat = LeaseHeartbeat(w1, lease, interval=0.05).start()
        try:
            # Forge a foreign takeover directly on disk.
            path = lease_path(str(tmp_path), 0)
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(
                    {
                        "version": 1, "shard": 0, "owner": "w2",
                        "token": 2, "deadline": time.time() + 60.0,
                        "ttl": 0.4,
                    },
                    handle,
                )
            deadline = time.time() + 5.0
            while not beat.lost.is_set() and time.time() < deadline:
                time.sleep(0.02)
            assert beat.lost.is_set()
        finally:
            beat.stop()
