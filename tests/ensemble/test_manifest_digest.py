"""The ensemble manifest pins the submitting JobSpec by digest.

``repro ensemble run`` records ``JobSpec.digest()`` of the campaign it
was asked to run; ``status`` surfaces it, and ``--resume`` / ``join``
recompute the digest from the manifest parameters against the campaign
as *currently defined* and refuse on a mismatch — a directory produced
by a different spec (edited catalog, changed scale semantics) cannot be
silently extended.
"""

import json
import os

import pytest

from repro.ensemble import ensemble_status, run_ensemble
from repro.ensemble.manifest import load_manifest, save_manifest
from repro.exceptions import ExperimentError
from repro.jobspec import JobSpec

CAMPAIGN = "ag_corrupt_recover"


def run_small(out_dir, **overrides):
    kwargs = dict(
        campaign_id=CAMPAIGN,
        scale="smoke",
        total_runs=4,
        shard_size=2,
        seed=17,
        workers=None,
    )
    kwargs.update(overrides)
    return run_ensemble(str(out_dir), **kwargs)


def expected_digest(total_runs=4, seed=17):
    return JobSpec.from_campaign(
        CAMPAIGN, scale="smoke", seed=seed, repetitions=total_runs
    ).digest()


class TestManifestDigest:
    def test_fresh_run_records_the_submitting_digest(self, tmp_path):
        run_small(tmp_path / "a")
        manifest = load_manifest(str(tmp_path / "a"))
        assert manifest["jobspec_digest"] == expected_digest()

    def test_status_surfaces_the_digest(self, tmp_path):
        run_small(tmp_path / "a")
        status = ensemble_status(str(tmp_path / "a"))
        assert status["jobspec_digest"] == expected_digest()

    def test_resume_refuses_a_drifted_spec(self, tmp_path):
        out = tmp_path / "a"
        run_small(out)
        manifest = load_manifest(str(out))
        manifest["jobspec_digest"] = "0" * 64
        save_manifest(str(out), manifest)
        os.remove(os.path.join(str(out), "aggregates.json"))
        with pytest.raises(ExperimentError, match="spec changed"):
            run_small(out, resume=True)

    def test_resume_accepts_a_matching_digest(self, tmp_path):
        out = tmp_path / "a"
        run_small(out)
        os.remove(os.path.join(str(out), "aggregates.json"))
        resumed = run_small(out, resume=True)
        assert resumed["aggregates"]["runs"] == 4

    def test_predigest_manifests_still_resume(self, tmp_path):
        """Directories from before the digest existed keep working."""
        out = tmp_path / "a"
        run_small(out)
        path = os.path.join(str(out), "manifest.json")
        manifest = json.load(open(path))
        del manifest["jobspec_digest"]
        save_manifest(str(out), manifest)
        os.remove(os.path.join(str(out), "aggregates.json"))
        resumed = run_small(out, resume=True)
        assert resumed["aggregates"]["runs"] == 4
