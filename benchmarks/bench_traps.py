"""Benchmarks: the trap machinery (Lemma 1 drain, Lemma 2 tidy time)."""

import pytest


@pytest.mark.benchmark(group="lemmas")
def test_trap_drain_rates(run_and_show):
    """Lemma 1: release times normalised by m·n (and ·log l) stay flat."""
    result = run_and_show("trap_drain")
    rows = result.raw["rows"]
    # group normalised half-release times by surplus class and check the
    # spread across trap sizes m stays within a constant factor
    by_class = {}
    for row in rows:
        m, surplus = row["m"], row["surplus"]
        n = m + 1 + surplus
        key = "one" if surplus == 1 else ("half" if surplus < m else "full")
        by_class.setdefault(key, []).append(row["half_median"] / (m * n))
    for key, values in by_class.items():
        assert max(values) / min(values) < 5, (
            f"normalised drain times vary too much across m for {key}"
        )


@pytest.mark.benchmark(group="lemmas")
def test_tidy_time(run_and_show):
    """Lemma 2: time-to-tidy normalised by m·n does not grow."""
    result = run_and_show("tidy_time")
    rows = result.raw["rows"]
    ms = [row["m"] for row in rows]
    normalised = [
        row["median"] / (m * m * (m + 1)) for row, m in zip(rows, ms)
    ]
    assert normalised[-1] <= normalised[0] * 3, (
        "tidy time grows faster than m·n"
    )
