"""Benchmark: the Theorem 1 corollary — ring beats the n² barrier
while k = O(√n)."""

import pytest


@pytest.mark.benchmark(group="theorem1")
def test_ring_vs_barrier_crossover(run_and_show, scale):
    """Advantage over the barrier is big at small k and decays with k;
    any crossover sits at or beyond Θ(√n), never before."""
    result = run_and_show("crossover")
    advantages = result.raw["advantages"]
    sqrt_n = result.raw["sqrt_n"]
    ks = result.raw["ks"]

    # the o(n²) claim: at k = 1 the ring crushes the barrier
    assert advantages[0] > 3, (
        f"ring only {advantages[0]:.1f}x faster than the n² barrier at k=1"
    )

    if scale == "smoke":
        return  # too few k points for decay structure

    # the advantage decays as k grows (compare the extremes)
    assert advantages[-1] < advantages[0] / 2, (
        "ring advantage did not decay with k"
    )

    # the paper's corollary: the guarantee holds for all k = o(√n), so
    # the advantage must never be lost below √n (modulo small constants)
    crossover = result.raw["crossover_k"]
    if crossover is not None:
        assert crossover >= sqrt_n / 4, (
            f"advantage lost already at k={crossover} < √n/4"
        )
    # ring times increase with k (weak monotonicity across extremes)
    ring = result.raw["ring_median_times"]
    assert ring[-1] > ring[0]
    del ks
