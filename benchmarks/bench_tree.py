"""Benchmarks: Theorem 3 and its §5 support lemmas."""

import pytest


@pytest.mark.benchmark(group="theorem3")
def test_tree_protocol_scaling(run_and_show, scale):
    """O(n log n): exponent ≈ 1 after dividing out one log factor."""
    result = run_and_show("tree_scaling")
    band = (0.5, 1.6) if scale == "smoke" else (0.75, 1.3)
    for key in ("exponent_random", "exponent_pileup"):
        exponent = result.raw[key]
        assert band[0] < exponent < band[1], (
            f"{key} = {exponent:.2f} outside the n·log n band {band}"
        )


@pytest.mark.benchmark(group="theorem3")
def test_dispersal_from_root(run_and_show):
    """Lemmas 19–20: all-at-root disperses into a perfect ranking."""
    result = run_and_show("tree_paths")
    assert all(row["perfect"] for row in result.raw["rows"])
    # normalised time flat-ish: max/min ratio bounded
    ratios = [
        row["median"] for row in result.raw["rows"]
    ]
    ns = [row["n"] for row in result.raw["rows"]]
    import math

    normalised = [t / (n * math.log(n)) for t, n in zip(ratios, ns)]
    assert max(normalised) / min(normalised) < 3


@pytest.mark.benchmark(group="theorem3")
def test_reset_epidemic_is_logarithmic(run_and_show, scale):
    """Lemma 21: epidemic duration grows like log n, not like n."""
    result = run_and_show("reset_line")
    rows = result.raw["rows"]
    ns = [row["n"] for row in rows]
    epidemics = [row["epidemic_median"] for row in rows]
    if scale == "smoke" or len(ns) < 3:
        assert all(e > 0 for e in epidemics)
        return
    # n grows by ≥ 8x across the sweep; a log-time phase grows slowly,
    # far below linearly.
    n_growth = ns[-1] / ns[0]
    epidemic_growth = epidemics[-1] / max(epidemics[0], 1e-9)
    assert epidemic_growth < n_growth / 2, (
        f"epidemic grew {epidemic_growth:.1f}x while n grew {n_growth:.0f}x"
    )
