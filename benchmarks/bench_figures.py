"""Benchmarks regenerating the paper's figures (Figure 1 and Figure 2)."""

import pytest


@pytest.mark.benchmark(group="figures")
def test_figure1_routing_graph(run_and_show):
    """Figure 1: cubic routing graph G; worked example must match."""
    result = run_and_show("figure1")
    assert result.raw["example_matches_paper"] is True
    # every row: cubic, connected, diameter within the paper's bound
    for row in result.tables[0].rows:
        m, __, cubic, connected, diameter, bound = row
        assert cubic and connected
        if m >= 4:
            assert diameter <= bound


@pytest.mark.benchmark(group="figures")
def test_figure2_tree_of_ranks(run_and_show):
    """Figure 2: the n=9 perfectly balanced tree, node for node."""
    result = run_and_show("figure2")
    assert result.raw["figure2_exact_match"] is True
    for row in result.tables[0].rows:
        n, height, bound, __, uniform = row
        assert uniform
        assert height <= float(bound) or n == 1
