"""Benchmarks: hot-path events/sec of the jump engine vs the seed engine.

Runs the fixed ``repro bench`` suite (see :mod:`repro.analysis.bench`)
under pytest-benchmark and asserts the headline acceptance bar of the
fast-path overhaul: the current engine must beat the frozen seed engine
by >= 5x events/sec on the AG protocol at n = 10^4.

Direct invocation (``python benchmarks/bench_hotpath.py [--quick]``)
runs the full comparison and writes ``BENCH_<timestamp>.json``, exactly
like the ``repro bench`` CLI subcommand.
"""

import sys

import numpy as np
import pytest

from repro import AGProtocol, Configuration, JumpEngine
from repro.analysis.bench import LegacyJumpEngine, run_bench

# Trimmed sizes keep the pytest-benchmark pass at seconds; the CLI
# (`repro bench`) measures the full acceptance suite including n=10^4.
_BENCH_N = 2_000
_BENCH_EVENTS = 40_000


def _throughput(engine_cls, n, max_events, seed=7):
    protocol = AGProtocol(n)
    start = Configuration.all_in_state(0, n, n)
    engine = engine_cls(protocol, start, np.random.default_rng(seed))
    engine.run(max_events=max_events)
    return engine


@pytest.mark.benchmark(group="hotpath")
def test_current_engine_ag_throughput(benchmark):
    """Events/sec of the overhauled engine on AG (fixed event budget)."""
    engine = benchmark(_throughput, JumpEngine, _BENCH_N, _BENCH_EVENTS)
    assert engine.events == _BENCH_EVENTS


@pytest.mark.benchmark(group="hotpath")
def test_legacy_engine_ag_throughput(benchmark):
    """Baseline: the frozen seed engine on the identical workload."""
    engine = benchmark(_throughput, LegacyJumpEngine, _BENCH_N, _BENCH_EVENTS)
    assert engine.events == _BENCH_EVENTS


@pytest.mark.benchmark(group="hotpath")
def test_headline_speedup_at_least_5x():
    """Acceptance bar: >= 5x events/sec on AG at n=10^4 vs the seed."""
    record = run_bench(quick=False)
    head = record["headline"]
    assert head["case"] == "ag-n10000"
    assert head["speedup"] >= 5.0, (
        f"hot-path speedup regressed: {head['speedup']:.2f}x "
        f"({head['legacy_events_per_sec']:,.0f} -> "
        f"{head['current_events_per_sec']:,.0f} events/s)"
    )


if __name__ == "__main__":
    from repro.cli import main

    argv = ["bench"] + sys.argv[1:]
    sys.exit(main(argv))
