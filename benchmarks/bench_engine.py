"""Benchmarks: methodology — engine equivalence and raw engine throughput."""

import numpy as np
import pytest

from repro import AGProtocol, Configuration, JumpEngine, TreeRankingProtocol
from repro.configurations.generators import random_configuration


@pytest.mark.benchmark(group="methodology")
def test_engine_equivalence(run_and_show, scale):
    """Jump and sequential engines agree distributionally."""
    result = run_and_show("engine_equivalence")
    tolerance = 0.6 if scale == "smoke" else 0.25
    assert result.raw["max_median_deviation"] < tolerance, (
        "per-engine stabilisation-time medians diverged"
    )


@pytest.mark.benchmark(group="methodology")
def test_jump_engine_event_throughput(benchmark):
    """Raw productive-event throughput of the jump engine (AG, n=256).

    This is the quantity that bounds every experiment's wall time; a
    regression here silently inflates all sweeps.
    """
    protocol = AGProtocol(256)
    start = Configuration.all_in_state(0, 256, 256)

    def run_once():
        engine = JumpEngine(protocol, start, np.random.default_rng(7))
        engine.run()
        return engine.events

    events = benchmark(run_once)
    assert events > 0


@pytest.mark.benchmark(group="methodology")
def test_tree_engine_throughput(benchmark):
    """Jump-engine throughput on the 3-family tree protocol (n=1024)."""
    protocol = TreeRankingProtocol(1024)
    start = random_configuration(protocol, seed=11)

    def run_once():
        engine = JumpEngine(protocol, start, np.random.default_rng(11))
        engine.run()
        return engine.events

    events = benchmark(run_once)
    assert events > 0
