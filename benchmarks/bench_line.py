"""Benchmark: Theorem 2 — the one-extra-state protocol is o(n²)."""

import pytest


@pytest.mark.benchmark(group="theorem2")
def test_line_protocol_scaling(run_and_show, scale):
    """time/n² must shrink with n (the o(n²) claim), and the protocol
    must not lose to AG by more than constants at comparable n."""
    result = run_and_show("line_scaling")
    rows = result.tables[0].rows
    per_n_squared = [row[4] for row in rows]
    if len(per_n_squared) >= 2:
        assert per_n_squared[-1] < per_n_squared[0], (
            "time/n² did not shrink — no evidence of o(n²)"
        )
    if scale != "smoke" and "exponent" in result.raw:
        # log²n divided out; Theorem 2's polynomial part is 1.75
        assert result.raw["exponent"] < 2.0
    # every configuration must have ranked (stable + silent)
    assert all(row[-1] for row in rows)
