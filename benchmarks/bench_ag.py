"""Benchmark: the AG baseline's Θ(n²) stabilisation time (§1/§2)."""

import pytest


@pytest.mark.benchmark(group="scaling")
def test_ag_quadratic_scaling(run_and_show, scale):
    """Growth exponent of the baseline must sit near 2."""
    result = run_and_show("ag_quadratic")
    exponent = result.raw["exponent"]
    band = (1.5, 2.5) if scale == "smoke" else (1.75, 2.25)
    assert band[0] < exponent < band[1], (
        f"AG exponent {exponent:.2f} outside Θ(n²) band {band}"
    )
    # the fit should be clean on a pure power law
    if scale != "smoke":
        assert result.raw["r_squared"] > 0.98
