"""Benchmarks: the state-vs-time trade-off and the reset ablation."""

import pytest


@pytest.mark.benchmark(group="tradeoff")
def test_state_time_tradeoff(run_and_show):
    """Cliff below ~(2/3)·log₂ n, knee at Θ(log n), plateau beyond."""
    result = run_and_show("state_time_tradeoff")
    raw = result.raw
    assert raw["knee_k"] is not None, "no converged tree configuration"
    # the knee sits at Θ(log n): within [log n / 3, 1.5·log n]
    assert raw["log2_n"] / 3 <= raw["knee_k"] <= 1.5 * raw["log2_n"]
    # at the knee, the tree protocol beats AG by a large factor
    knee_index = raw["ks"].index(raw["knee_k"]) + 1  # +1 for the AG row
    assert raw["median_times"][knee_index] < raw["ag_median"] / 2
    # the plateau: doubling x beyond 2·log n changes time < 2x
    converged = [
        t for t, ok in zip(raw["median_times"][1:], raw["converged"][1:]) if ok
    ]
    assert max(converged) / min(converged) < 10  # knee→plateau variation


@pytest.mark.benchmark(group="tradeoff")
def test_reset_ablation(run_and_show):
    """Only the full red/green reset achieves stable+silent ranking."""
    result = run_and_show("reset_ablation")
    rows = {row["variant"]: row for row in result.raw["rows"]}
    trials = result.raw["trials"]
    real = rows["real tree protocol"]
    green = rows["all-green (no red phase)"]
    bare = rows["R1 only (no reset at all)"]
    assert real["ranked"] == trials, "the real protocol must always rank"
    # ablations fail on the (overwhelming) majority of random starts
    assert green["ranked"] <= trials // 4
    assert bare["ranked"] <= trials // 4
    # and they fail in *different* ways: churn vs wrong silence
    assert green["never_silent"] > 0
    assert bare["silent_but_wrong"] > 0
