"""Shared benchmark plumbing.

Every benchmark runs one registered experiment (the same code the CLI
runs), times it with pytest-benchmark, prints the regenerated table,
and asserts the paper's *shape* claims — who wins, how growth scales,
where crossovers fall.  Absolute numbers are not asserted (our
substrate is a simulator, not the authors' testbed).

Scale selection: benchmarks default to the ``small`` scale; export
``REPRO_BENCH_SCALE=paper`` for the EXPERIMENTS.md sweeps or
``REPRO_BENCH_SCALE=smoke`` for a quick pass.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment
from repro.experiments.base import bench_scale_from_env


@pytest.fixture(scope="session")
def scale() -> str:
    """The benchmark scale, from REPRO_BENCH_SCALE (default: small)."""
    return bench_scale_from_env()


@pytest.fixture
def run_and_show(benchmark, scale, capsys):
    """Run an experiment under the benchmark timer and print its tables."""

    def runner(experiment_id: str, seed: int = 0):
        result = benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"scale": scale, "seed": seed},
            rounds=1,
            iterations=1,
        )
        with capsys.disabled():
            print(f"\n[{experiment_id} @ scale={scale}]")
            print(result.render())
        return result

    return runner
