"""Benchmarks: Theorem 1 — ring-of-traps from k-distant configurations."""

import pytest


@pytest.mark.benchmark(group="theorem1")
def test_time_vs_k(run_and_show, scale):
    """At fixed n, time grows with k but at most ~linearly (Lemma 3)."""
    result = run_and_show("kdistant_vs_k")
    exponent = result.raw["exponent_in_k"]
    assert exponent > 0, "time must grow with the distance k"
    upper = 1.6 if scale == "smoke" else 1.3
    assert exponent < upper, (
        f"time ~ k^{exponent:.2f} exceeds Lemma 3's linear-in-k envelope"
    )
    # times must be increasing in k overall
    medians = result.raw["median_times"]
    assert medians[-1] > medians[0]


@pytest.mark.benchmark(group="theorem1")
def test_time_vs_n_fixed_k(run_and_show, scale):
    """At fixed k, growth ≈ n^1.5 — strictly below the baseline's n²."""
    result = run_and_show("kdistant_vs_n")
    exponent = result.raw["exponent"]
    if scale == "smoke":
        assert 0.8 < exponent < 2.3
    else:
        assert 1.1 < exponent < 1.9, (
            f"k-distant exponent {exponent:.2f} not in the n^1.5 band"
        )


@pytest.mark.benchmark(group="theorem1")
def test_arbitrary_starts_within_polylog_of_quadratic(run_and_show, scale):
    """Lemma 4: arbitrary starts stay within n²·log²n."""
    result = run_and_show("ring_arbitrary")
    # normalised column time/(n² log² n) must not grow with n
    rows = result.tables[0].rows
    normalised = [row[4] for row in rows]
    assert normalised[-1] <= normalised[0] * 2.5, (
        "time/(n²·log²n) grows — Lemma 4 envelope violated in shape"
    )
