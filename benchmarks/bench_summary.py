"""Benchmark: the headline contribution table + Ω(n) lower-bound floor."""

import pytest


@pytest.mark.benchmark(group="headline")
def test_summary_table(run_and_show):
    """All four protocols rank correctly; every time respects Ω(n)."""
    result = run_and_show("summary")
    assert result.raw["lower_bound_floor_holds"] is True
    rows = result.raw["rows"]
    assert len(rows) == 4
    assert all(row["ranked"] for row in rows)
    by_name = {row["protocol"]: row for row in rows}
    # the tree protocol is the paper's fastest: its per-agent time must
    # be the smallest in the table despite using the largest n
    tree_row = next(r for r in rows if "Tree" in r["protocol"])
    others = [r for r in rows if "Tree" not in r["protocol"]]
    assert all(tree_row["time_per_n"] < r["time_per_n"] for r in others), (
        f"tree per-agent time {tree_row['time_per_n']:.2f} should win: "
        f"{ {r['protocol']: round(r['time_per_n'], 2) for r in rows} }"
    )
    assert by_name  # table integrity
