#!/usr/bin/env python3
"""Trace the §5 reset cascade: overload → red epidemic → green rebuild.

A perfectly ranked population is corrupted so that one leaf of the tree
of ranks holds two agents.  Rule R2 fires, flooding the reset line: the
*red* phase pulls every agent out of the tree in O(log n) time
(Lemma 21), the agents march up the line, turn *green*, drop onto the
root, and rule R1 rebuilds the perfect ranking (Lemmas 19–20).

The example prints a phase timeline: how many agents sit in the tree,
in red line states, and in green line states as parallel time passes.

Usage::

    python examples/reset_cascade.py [--n 256] [--seed 5]
"""

import argparse

import numpy as np

from repro import Configuration, JumpEngine, TreeRankingProtocol


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=256)
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--frames", type=int, default=24,
                        help="timeline rows to print")
    args = parser.parse_args()

    protocol = TreeRankingProtocol(args.n)
    n = protocol.num_ranks

    # Corrupt a solved population: move the rank-1 agent onto a leaf.
    counts = [1] * protocol.num_states
    for state in protocol.extra_states:
        counts[state] = 0
    leaf = protocol.tree.leaves[-1]
    counts[1] -= 1
    counts[leaf] += 1
    print(f"n={n}: perfect ranking corrupted — leaf {leaf} doubled, "
          f"rank 1 empty; reset line X1..X{2 * protocol.k}\n")

    engine = JumpEngine(
        protocol, Configuration(counts), np.random.default_rng(args.seed)
    )

    def census():
        tree_pop = sum(engine.counts[:n])
        red = sum(
            engine.counts[s] for s in protocol.line_states
            if protocol.is_red(s)
        )
        green = sum(
            engine.counts[s] for s in protocol.line_states
            if protocol.is_green(s)
        )
        return tree_pop, red, green

    print("parallel time |  tree |  red | green | phase")
    print("--------------+-------+------+-------+---------------------")
    events_between_frames = None
    frame_count = 0
    last_phase = None
    while True:
        tree_pop, red, green = census()
        if red + green == 0:
            phase = "dispersal" if tree_pop == n else "quiet"
        elif red >= green and red > 0:
            phase = "RED epidemic (unloading the tree)"
        else:
            phase = "green rebuild (via the root)"
        time = engine.interactions / n
        if phase != last_phase or frame_count % 8 == 0:
            print(f"{time:13,.0f} | {tree_pop:5d} | {red:4d} | {green:5d} "
                  f"| {phase}")
        last_phase = phase
        frame_count += 1
        # advance a burst of events between frames
        if events_between_frames is None:
            events_between_frames = max(1, n // 8)
        done = False
        for __ in range(events_between_frames):
            if engine.step() is None:
                done = True
                break
        if done:
            break
    tree_pop, red, green = census()
    time = engine.interactions / n
    print(f"{time:13,.0f} | {tree_pop:5d} | {red:4d} | {green:5d} | SILENT")
    final = Configuration(engine.counts)
    assert protocol.is_ranked(final), "the cascade must end perfectly ranked"
    print(f"\nre-ranked after {time:,.0f} parallel time "
          f"(Theorem 3: O(n log n) = O({args.n} · {np.log(args.n):.1f}))")


if __name__ == "__main__":
    main()
