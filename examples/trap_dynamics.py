#!/usr/bin/env python3
"""Watch the paper's core gadget at work: an agent trap draining (§2.1).

A trap of inner size ``m`` is overloaded with surplus agents on its top
inner state.  Excess agents descend toward the gate (rules ``R_i``),
the gate keeps every other visitor and releases the rest (rule
``R_g``).  This example renders snapshots of the trap over time — the
mechanics behind Lemma 1 — then checks the Lemma 5 closed form on a
whole line of traps against simulation.

Usage::

    python examples/trap_dynamics.py [--m 8] [--surplus 6] [--seed 2]
"""

import argparse

import numpy as np

from repro import Configuration, JumpEngine, SingleTrapProtocol
from repro.analysis.potentials import LineVectors, stabilise_line
from repro.protocols.line import IsolatedLineProtocol
from repro.viz.ascii import render_trap


def drain_demo(m: int, surplus: int, seed: int) -> None:
    """Render the trap every few productive events until silent."""
    protocol = SingleTrapProtocol(inner_size=m, num_agents=m + 1 + surplus)
    counts = [0] * protocol.num_states
    counts[protocol.trap.top] = protocol.num_agents
    engine = JumpEngine(
        protocol, Configuration(counts), np.random.default_rng(seed)
    )
    print(f"trap with inner size m={m}, surplus l={surplus} "
          f"(all agents start on the top inner state)\n")
    print("   time | trap occupancy (gate|inner…) | released")
    frame_every = max(1, (m + surplus) // 4)
    event_index = 0
    while True:
        if event_index % frame_every == 0:
            time = engine.interactions / protocol.num_agents
            print(
                f"{time:7.0f} | "
                f"{render_trap(protocol.trap, engine.counts, label='')} | "
                f"{engine.counts[protocol.exit_state]}"
            )
        if engine.step() is None:
            break
        event_index += 1
    time = engine.interactions / protocol.num_agents
    print(f"{time:7.0f} | "
          f"{render_trap(protocol.trap, engine.counts, label='')} | "
          f"{engine.counts[protocol.exit_state]}  ← silent")
    released = engine.counts[protocol.exit_state]
    print(f"\nthe trap kept m+1 = {m + 1} agents and released "
          f"{released} (its surplus), as Fact 3 + Lemma 1 predict\n")


def closed_form_demo(seed: int) -> None:
    """Lemma 5: the line's final state is schedule-independent."""
    beta, gamma = (3, 0, 2), (1, 5, 0)
    caps = (3, 3, 3)
    vectors = LineVectors(beta=beta, gamma=gamma, inner_caps=caps)
    final, surplus = stabilise_line(vectors)
    print("line of 3 traps (closed form, no simulation):")
    print(f"  start:  β={beta} γ={gamma}")
    print(f"  final:  β={final.beta} γ={final.gamma}, releases {surplus}")

    protocol = IsolatedLineProtocol(
        num_traps=3, inner_cap=3, num_agents=vectors.num_agents
    )
    start = protocol.configuration_from_vectors(list(beta), list(gamma))
    for run_seed in range(seed, seed + 3):
        engine = JumpEngine(
            protocol, start, np.random.default_rng(run_seed)
        )
        engine.run()
        sim_released = engine.counts[protocol.release_state]
        print(f"  simulated schedule {run_seed}: releases {sim_released} "
              f"{'✓' if sim_released == surplus else '✗ MISMATCH'}")
    print("\nevery schedule agrees with the closed form — Lemma 5's "
          "schedule independence")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--m", type=int, default=8, help="inner trap size")
    parser.add_argument("--surplus", type=int, default=6)
    parser.add_argument("--seed", type=int, default=2)
    args = parser.parse_args()
    drain_demo(args.m, args.surplus, args.seed)
    closed_form_demo(args.seed)


if __name__ == "__main__":
    main()
