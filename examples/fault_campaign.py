#!/usr/bin/env python3
"""Fault campaign: inject faults mid-run and measure recovery.

Self-stabilisation means recovery from *any* transient fault, not just
an adversarial start.  This example scripts a custom scenario — run to
silence, corrupt a third of the agents, recover, then a churn wave that
resizes the population — runs it as a seeded campaign, and prints the
recovery-time distribution.  It also shows the scheduler hook: the same
protocol runs under the clustered scheduler, where cross-block
interactions are throttled 20x.

Usage::

    python examples/fault_campaign.py [--n 120] [--repetitions 5] [--seed 7]
"""

import argparse

from repro import (
    FaultPhase,
    ProtocolSpec,
    RunPhase,
    Scenario,
    SchedulerSpec,
    StartSpec,
    run_campaign,
)
from repro.analysis.recovery import (
    phase_table,
    recovery_records,
    recovery_table,
)


def build_scenario(n: int) -> Scenario:
    """Stabilise -> corrupt 33% -> recover -> churn -> recover, on AG."""
    budget = 400 * n * n  # events; AG re-silences in O(n^2) parallel time
    return Scenario(
        name="example_fault_campaign",
        description="AG: corruption then churn, clocked to re-silence",
        protocol=ProtocolSpec(kind="ag", num_agents=n),
        start=StartSpec(kind="random"),
        phases=(
            RunPhase(until="silence", max_events=budget, label="stabilise"),
            FaultPhase(kind="corrupt", fraction=0.33, label="corrupt 33%"),
            RunPhase(until="silence", max_events=budget, label="recover"),
            FaultPhase(
                kind="churn",
                departures=n // 6,
                arrivals=n // 12,
                arrival_state="leader",
                label=f"churn -{n // 6}/+{n // 12}",
            ),
            RunPhase(until="silence", max_events=budget, label="recover"),
        ),
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=120, help="population size")
    parser.add_argument("--repetitions", type=int, default=5)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    # 1. A campaign = many independently seeded runs of one scenario.
    scenario = build_scenario(args.n)
    campaign = run_campaign(
        scenario, repetitions=args.repetitions, seed=args.seed
    )
    print(f"scenario        : {scenario.description}")
    print(f"repetitions     : {campaign.repetitions} (seed {args.seed})")
    print(f"all recovered   : {campaign.recovered_fraction == 1.0}")
    print()
    print(recovery_table(campaign).render())
    print()
    print(phase_table(campaign).render())

    # 2. The worst recovery is what a whp bound talks about.
    records = [r for r in recovery_records(campaign) if r.recovered]
    worst = max(records, key=lambda r: r.recovery_time)
    print()
    print(f"slowest recovery: {worst.recovery_time:,.0f} parallel time "
          f"after {worst.fault_label!r} (repetition {worst.repetition})")

    # 3. Same protocol, non-uniform scheduler: cluster the state space
    #    into 4 blocks and throttle cross-block pairs to 5%.  For AG
    #    every productive pair is same-state — always intra-cluster —
    #    so locality *helps* it in the scheduler's clock; protocols with
    #    cross-state rules (line, tree) are the ones clustering starves.
    adversarial = Scenario(
        name="example_clustered",
        description="AG under the clustered scheduler",
        protocol=ProtocolSpec(kind="ag", num_agents=min(args.n, 48)),
        start=StartSpec(kind="random"),
        scheduler=SchedulerSpec(kind="clustered", num_clusters=4, across=0.05),
        phases=(
            RunPhase(
                until="silence", max_interactions=5_000_000, label="stabilise"
            ),
        ),
    )
    slow = run_campaign(adversarial, repetitions=2, seed=args.seed)
    times = [r.phase_logs[0].parallel_time for r in slow.results]
    print()
    print(f"clustered sched : silent={all(r.phase_logs[0].silent for r in slow.results)}, "
          f"parallel time {min(times):,.0f}..{max(times):,.0f} "
          "(AG's same-state rules dodge the throttle)")


if __name__ == "__main__":
    main()
