#!/usr/bin/env python3
"""Scenario: a sensor fleet self-healing after partial failures (§3).

A swarm of anonymous sensors uses ranks as collision-free slot numbers
(think TDMA slots or sampling offsets).  Sensors occasionally crash and
reboot with a default state, leaving ``k`` slots unclaimed — exactly a
``k``-distant configuration.  The state-optimal ring-of-traps protocol
re-ranks the fleet in ``O(k·n^{3/2})`` time, so *small* failure bursts
heal much faster than a full restart.

This example stabilises a fleet, injects failure bursts of increasing
size, and reports the measured recovery times — the Theorem 1 story.

Usage::

    python examples/sensor_network_recovery.py [--m 12] [--seed 3]
"""

import argparse

from repro import (
    RingOfTrapsProtocol,
    crash_and_replace,
    distance_from_solved,
    run_protocol,
    solved_configuration,
)
from repro.analysis.tables import Table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--m", type=int, default=12,
                        help="ring parameter; fleet size is m(m+1)")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--repetitions", type=int, default=5)
    args = parser.parse_args()

    protocol = RingOfTrapsProtocol(m=args.m)
    n = protocol.num_agents
    print(f"fleet of {n} sensors, ranked via {protocol.name} "
          f"(state-optimal: zero extra states)\n")

    table = Table(
        title="Recovery time after failure bursts",
        headers=[
            "sensors rebooted", "slots lost (k)", "median recovery time",
            "recovery/(k·n^1.5)",
        ],
    )
    fleet = solved_configuration(protocol)
    for burst in (1, 2, 4, 8, n // 4):
        times = []
        distances = []
        for rep in range(args.repetitions):
            seed = args.seed * 1000 + burst * 10 + rep
            damaged = crash_and_replace(
                fleet, burst, replacement_state=0, seed=seed
            )
            distances.append(distance_from_solved(protocol, damaged))
            result = run_protocol(protocol, damaged, seed=seed)
            assert result.silent and protocol.is_ranked(
                result.final_configuration
            ), "the fleet must always heal (stability)"
            times.append(result.parallel_time)
        median_time = sorted(times)[len(times) // 2]
        median_k = sorted(distances)[len(distances) // 2]
        envelope = max(1, median_k) * n**1.5
        table.add_row(burst, median_k, median_time, median_time / envelope)
    table.add_note(
        "recovery scales with the burst size k, not with the fleet-wide "
        "worst case n²·log²n — Theorem 1's k-distant bound"
    )
    print(table.render())


if __name__ == "__main__":
    main()
