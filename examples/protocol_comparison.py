#!/usr/bin/env python3
"""Compare all four protocols of the paper on one machine.

Runs the baseline ``AG``, the §3 ring of traps, the §4 line of traps
and the §5 tree protocol from comparable adversarial starts, and prints
the headline table: extra states used, measured stabilisation time, and
the paper's bound — the trade-off between state overhead and speed that
the whole paper is about.

Usage::

    python examples/protocol_comparison.py [--seed 1] [--repetitions 3]
"""

import argparse

from repro import (
    AGProtocol,
    LineOfTrapsProtocol,
    RingOfTrapsProtocol,
    TreeRankingProtocol,
    k_distant_configuration,
    random_configuration,
    run_protocol,
)
from repro.analysis.stats import summarise
from repro.analysis.tables import Table


def median_time(protocol_factory, config_factory, seeds):
    """Median stabilisation time over independent seeded runs."""
    times = []
    for seed in seeds:
        protocol = protocol_factory()
        config = config_factory(protocol, seed)
        result = run_protocol(protocol, config, seed=seed)
        assert result.silent, "all paper protocols are stable"
        times.append(result.parallel_time)
    return summarise(times).median


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--repetitions", type=int, default=3)
    args = parser.parse_args()
    seeds = [args.seed + i for i in range(args.repetitions)]

    def random_ranks(p, s):
        return random_configuration(p, seed=s, include_extras=False)

    def random_full(p, s):
        return random_configuration(p, seed=s)

    def four_distant(p, s):
        return k_distant_configuration(p, 4, seed=s)

    contestants = [
        ("AG (baseline, §2)", lambda: AGProtocol(240), random_ranks,
         "random", "Θ(n²)"),
        ("ring of traps (§3)", lambda: RingOfTrapsProtocol(m=15),
         four_distant, "4-distant", "O(min(k·n^1.5, n²·log²n))"),
        ("line of traps (§4)", lambda: LineOfTrapsProtocol(m=2),
         random_full, "random", "O(n^1.75·log²n)"),
        ("tree of ranks (§5)", lambda: TreeRankingProtocol(240),
         random_full, "random", "O(n·log n)"),
    ]

    table = Table(
        title="Self-stabilising ranking: state overhead vs speed",
        headers=[
            "protocol", "n", "extra states", "start",
            "median time", "time/n", "paper bound",
        ],
    )
    for label, factory, config_factory, start_label, bound in contestants:
        protocol = factory()
        time = median_time(factory, config_factory, seeds)
        table.add_row(
            label,
            protocol.num_agents,
            protocol.num_extra_states,
            start_label,
            time,
            time / protocol.num_agents,
            bound,
        )
    table.add_note(
        "time/n must stay ≥ some constant: silent self-stabilising "
        "leader election needs Ω(n) expected time [24, 32]"
    )
    table.add_note(
        "more extra states buy speed: x=0 → ~n², x=O(log n) → ~n·log n"
    )
    print(table.render())


if __name__ == "__main__":
    main()
