#!/usr/bin/env python3
"""Epoch-switching adversary: the scheduler's bias changes mid-run.

The paper's recovery bounds are adversary-agnostic — they must hold
even when the scheduler *changes its mind*.  This example scripts a
time-varying adversary against the tree protocol: while the population
stabilises, agents on the reset line are starved; the moment the run
first reaches silence, the bias flips and the rank states are starved
instead.  A crash wave then lands on the reset line, so the recovery
(the part the paper bounds) runs entirely under the flipped bias.

The whole timeline runs on the weighted jump fast path — one
precompiled weighted index per segment, hot-swapped at the boundary —
and the per-epoch recovery table shows which bias was active when each
recovery completed.

Usage::

    python examples/epoch_adversary.py [--n 150] [--repetitions 4] [--seed 7]
"""

import argparse

from repro import (
    EpochSpec,
    FaultPhase,
    ProtocolSpec,
    RunPhase,
    Scenario,
    SchedulerSpec,
    StartSpec,
    run_campaign,
)
from repro.analysis.recovery import epoch_table, recovery_table


def build_scenario(n: int) -> Scenario:
    """Stabilise under one bias, recover from a crash under its inverse."""
    budget = 600 * n  # events; the tree re-silences in O(n log n)
    return Scenario(
        name="example_epoch_adversary",
        description="tree protocol under a bias that flips at silence",
        protocol=ProtocolSpec(kind="tree", num_agents=n),
        start=StartSpec(kind="random"),
        timeline=(
            EpochSpec(
                scheduler=SchedulerSpec(
                    kind="state_biased", extra_weight=0.15
                ),
                until="silence",
                label="reset line starved",
            ),
            EpochSpec(
                scheduler=SchedulerSpec(
                    kind="state_biased", rank_weight=0.3, extra_weight=1.0
                ),
                label="ranks starved",
            ),
        ),
        phases=(
            RunPhase(until="silence", max_events=budget, label="stabilise"),
            FaultPhase(
                kind="crash",
                fraction=0.25,
                replacement_state="first_extra",
                label="crash 25% -> reset line",
            ),
            RunPhase(until="silence", max_events=budget, label="recover"),
        ),
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=150)
    parser.add_argument("--repetitions", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    scenario = build_scenario(args.n)
    campaign = run_campaign(
        scenario, repetitions=args.repetitions, seed=args.seed
    )

    schedulers = sorted(
        {
            log.scheduler
            for result in campaign.results
            for log in result.phase_logs
        }
    )
    print(f"scenario        : {scenario.description}")
    print(f"population n    : {args.n}")
    print(f"epochs observed : {', '.join(schedulers)}")
    print(f"all recovered   : {campaign.recovered_fraction == 1.0}")
    print()
    print(recovery_table(campaign).render())
    print()
    print(epoch_table(campaign).render())


if __name__ == "__main__":
    main()
