#!/usr/bin/env python3
"""Quickstart: rank an anonymous population and elect a leader.

Builds the paper's fastest protocol (the §5 tree protocol with
``O(log n)`` extra states), starts it from a completely arbitrary
configuration — the self-stabilising setting — and runs it to silence.

Usage::

    python examples/quickstart.py [--n 500] [--seed 7]
"""

import argparse

from repro import (
    TreeRankingProtocol,
    count_leaders,
    random_configuration,
    run_protocol,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=500, help="population size")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    # 1. Build the protocol: n rank states + O(log n) extra states.
    protocol = TreeRankingProtocol(num_agents=args.n)
    print(f"protocol        : {protocol.name}")
    print(f"population      : {protocol.num_agents} agents")
    print(f"rank states     : {protocol.num_ranks}")
    print(f"extra states    : {protocol.num_extra_states} "
          f"(reset line X1..X{2 * protocol.k})")

    # 2. Adversarial setting: agents start in arbitrary states.
    start = random_configuration(protocol, seed=args.seed)
    print(f"start           : {start.support_size()} distinct states "
          f"occupied, {len(start.overloaded_states())} overloaded")

    # 3. Run the random scheduler until the population goes silent.
    result = run_protocol(protocol, start, seed=args.seed)

    # 4. Silence ⟺ every agent holds a unique rank; rank 0 leads.
    final = result.final_configuration
    print(f"silent          : {result.silent}")
    print(f"correctly ranked: {protocol.is_ranked(final)}")
    print(f"unique leader   : {count_leaders(protocol, final) == 1}")
    print(f"parallel time   : {result.parallel_time:,.0f} "
          f"(≈ {result.parallel_time / args.n:.1f}·n; "
          f"Theorem 3 predicts O(n log n))")
    print(f"interactions    : {result.interactions:,} "
          f"({result.events:,} productive)")
    print(f"wall time       : {result.wall_time_s:.2f}s")


if __name__ == "__main__":
    main()
